package cliflags

import (
	"flag"
	"io"
	"testing"
	"time"

	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/owl"
)

func newSet(d Defaults) (*flag.FlagSet, *Shared) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs, Register(fs, d)
}

func TestNamesAllRegistered(t *testing.T) {
	fs, _ := newSet(Defaults{})
	for _, name := range Names() {
		if fs.Lookup(name) == nil {
			t.Errorf("Names() lists %q but Register did not define it", name)
		}
	}
	n := 0
	fs.VisitAll(func(*flag.Flag) { n++ })
	if n != len(Names()) {
		t.Errorf("Register defined %d flags, Names() lists %d — keep them in lockstep", n, len(Names()))
	}
}

func TestDefaultsApplied(t *testing.T) {
	fs, s := newSet(Defaults{Noise: "full", Workers: 3, FailFast: true})
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if s.Noise != "full" || s.Workers != 3 || !s.FailFast {
		t.Errorf("per-binary defaults not applied: %+v", s)
	}
	fs2, s2 := newSet(Defaults{})
	if err := fs2.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if s2.Noise != "light" || s2.Workers != 0 || s2.FailFast {
		t.Errorf("zero Defaults should mean light/0/degrade: %+v", s2)
	}
	if s2.Predict || s2.PredictReversal {
		t.Error("prediction must default off")
	}
	if s2.Engine != "tree" {
		t.Errorf("engine default = %q, want tree (goldens and benchmarks pin the oracle engine)", s2.Engine)
	}
}

func TestParseSharedFlags(t *testing.T) {
	fs, s := newSet(Defaults{})
	err := fs.Parse([]string{
		"-explore", "coverage", "-budget", "32", "-seed", "7",
		"-snap-cache", "64", "-max-steps", "1000", "-stage-timeout", "30s",
		"-predict", "-predict-reversal", "-fail-fast",
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Budget != 32 || s.Seed != 7 || s.SnapCache != 64 || s.MaxSteps != 1000 {
		t.Errorf("numeric flags misparsed: %+v", s)
	}
	if s.StageTimeout != 30*time.Second {
		t.Errorf("StageTimeout = %v", s.StageTimeout)
	}
	if !s.Predict || !s.PredictReversal || !s.FailFast {
		t.Errorf("bool flags misparsed: %+v", s)
	}
	mode, err := s.Mode()
	if err != nil || mode != owl.ExploreCoverage {
		t.Errorf("Mode() = %v, %v", mode, err)
	}
}

func TestModeRejectsUnknown(t *testing.T) {
	fs, s := newSet(Defaults{})
	if err := fs.Parse([]string{"-explore", "bogus"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Mode(); err == nil {
		t.Error("Mode() accepted bogus explore mode")
	}
}

func TestEngineVal(t *testing.T) {
	for _, tc := range []struct {
		arg  string
		want interp.Engine
		ok   bool
	}{
		{"tree", interp.EngineTree, true},
		{"bytecode", interp.EngineBytecode, true},
		{"jit", "", false},
	} {
		fs, s := newSet(Defaults{})
		if err := fs.Parse([]string{"-engine", tc.arg}); err != nil {
			t.Fatal(err)
		}
		eng, err := s.EngineVal()
		if tc.ok && (err != nil || eng != tc.want) {
			t.Errorf("EngineVal(%q) = %v, %v; want %v", tc.arg, eng, err, tc.want)
		}
		if !tc.ok && err == nil {
			t.Errorf("EngineVal(%q) accepted an unknown engine", tc.arg)
		}
	}
}

func TestPlanNilWhenUnset(t *testing.T) {
	fs, s := newSet(Defaults{})
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	plan, err := s.Plan()
	if plan != nil || err != nil {
		t.Errorf("Plan() = %v, %v; want nil, nil", plan, err)
	}
}

func TestParsePeers(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want []string
		ok   bool
	}{
		{"", nil, true},
		{"  ", nil, true},
		{"http://a:8080", []string{"http://a:8080"}, true},
		{"http://a:8080/, https://b:9090 ,", []string{"http://a:8080", "https://b:9090"}, true},
		{"a:8080", nil, false},
		{"ftp://a:8080", nil, false},
		{"http://", nil, false},
	} {
		got, err := ParsePeers(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParsePeers(%q) error = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if !tc.ok {
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("ParsePeers(%q) = %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("ParsePeers(%q)[%d] = %q, want %q", tc.in, i, got[i], tc.want[i])
			}
		}
	}
}
