// Package cliflags defines the flag set shared by cmd/owl and
// cmd/owl-tables in one place. The two binaries drifted once (-seed,
// -fail-fast, and -max-steps existed only on cmd/owl); registering the
// shared flags through one helper makes that structurally impossible,
// and the parity test in each main package pins every binary to the
// canonical list.
package cliflags

import (
	"flag"
	"fmt"
	"net/url"
	"strings"
	"time"

	"github.com/conanalysis/owl/internal/faultinject"
	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/owl"
)

// Shared holds the parsed values of the flags both binaries accept.
type Shared struct {
	Noise           string
	Engine          string
	Explore         string
	Budget          int
	Seed            uint64
	SnapCache       int
	Workers         int
	MetricsOut      string
	MaxSteps        int
	StageTimeout    time.Duration
	Retries         int
	FaultsPath      string
	FailFast        bool
	Predict         bool
	PredictReversal bool
}

// Defaults carries the few per-binary differences: default values and
// the workers usage string (the binaries fan out over different units).
type Defaults struct {
	Noise        string // "" = light
	Workers      int
	WorkersUsage string
	FailFast     bool
}

// Names returns the canonical shared flag names; the per-binary parity
// tests assert each binary's flag set contains every one of them.
func Names() []string {
	return []string{
		"noise", "engine", "explore", "budget", "seed", "snap-cache", "workers",
		"metrics", "max-steps", "stage-timeout", "retries", "faults",
		"fail-fast", "predict", "predict-reversal",
	}
}

// Register installs the shared flags on fs and returns the value holder.
func Register(fs *flag.FlagSet, d Defaults) *Shared {
	s := &Shared{}
	noise := d.Noise
	if noise == "" {
		noise = "light"
	}
	workersUsage := d.WorkersUsage
	if workersUsage == "" {
		workersUsage = "worker pool size (0 = NumCPU)"
	}
	fs.StringVar(&s.Noise, "noise", noise, "workload noise level: light or full")
	fs.StringVar(&s.Engine, "engine", "tree", "interpreter execution engine: tree or bytecode (docs/BYTECODE.md)")
	fs.StringVar(&s.Explore, "explore", "fixed", "detect-stage schedule exploration: fixed or coverage")
	fs.IntVar(&s.Budget, "budget", 0, "run budget for -explore=coverage and -predict (0 = detect runs)")
	fs.Uint64Var(&s.Seed, "seed", 0, "base seed for -explore=coverage and -predict")
	fs.IntVar(&s.SnapCache, "snap-cache", 0, "snapshot-cache entries per coverage stage for prefix-sharing exploration (0 = off)")
	fs.IntVar(&s.Workers, "workers", d.Workers, workersUsage)
	fs.StringVar(&s.MetricsOut, "metrics", "", `write per-stage metrics JSON to this file ("-" = stdout)`)
	fs.IntVar(&s.MaxSteps, "max-steps", 0, "interpreter step budget per run (0 = program default)")
	fs.DurationVar(&s.StageTimeout, "stage-timeout", 0, "per-stage deadline; an overrunning stage degrades (0 = none)")
	fs.IntVar(&s.Retries, "retries", 0, "extra attempts a faulted run gets before quarantine")
	fs.StringVar(&s.FaultsPath, "faults", "", "deterministic fault-injection plan JSON (see docs/ROBUSTNESS.md)")
	fs.BoolVar(&s.FailFast, "fail-fast", d.FailFast, "error out on the first faulted stage instead of degrading")
	fs.BoolVar(&s.Predict, "predict", false, "predictive race detection: predict pairs from seed traces, confirm with steered replays (docs/PREDICTION.md)")
	fs.BoolVar(&s.PredictReversal, "predict-reversal", false, "with -predict: also predict optimistic sync-reversal pairs (confirmation filters infeasible ones)")
	return s
}

// EngineVal validates and returns the execution engine.
func (s *Shared) EngineVal() (interp.Engine, error) {
	eng := interp.Engine(s.Engine)
	if eng != interp.EngineTree && eng != interp.EngineBytecode {
		return "", fmt.Errorf("unknown -engine %q (want tree or bytecode)", s.Engine)
	}
	return eng, nil
}

// Mode validates and returns the exploration mode.
func (s *Shared) Mode() (owl.ExploreMode, error) {
	mode := owl.ExploreMode(s.Explore)
	if mode != owl.ExploreFixed && mode != owl.ExploreCoverage {
		return "", fmt.Errorf("unknown -explore mode %q (want fixed or coverage)", s.Explore)
	}
	return mode, nil
}

// ParsePeers splits and validates a -peers value: a comma-separated
// list of http(s) base URLs, one per fleet replica. Entries are trimmed
// and empties dropped, so trailing commas are harmless; a trailing
// slash is stripped so the client can join paths naively. An empty
// value returns nil — replication off.
func ParsePeers(v string) ([]string, error) {
	if strings.TrimSpace(v) == "" {
		return nil, nil
	}
	var out []string
	for _, part := range strings.Split(v, ",") {
		p := strings.TrimSpace(part)
		if p == "" {
			continue
		}
		u, err := url.Parse(p)
		if err != nil {
			return nil, fmt.Errorf("peer %q: %w", p, err)
		}
		if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("peer %q: want an http(s) base URL like http://replica-2:8080", p)
		}
		out = append(out, strings.TrimRight(p, "/"))
	}
	return out, nil
}

// Plan loads the fault-injection plan named by -faults; nil when unset.
func (s *Shared) Plan() (*faultinject.Plan, error) {
	if s.FaultsPath == "" {
		return nil, nil
	}
	return faultinject.Load(s.FaultsPath)
}
