package faultinject

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestParseValidatesRules(t *testing.T) {
	cases := []struct {
		name string
		src  string
		ok   bool
	}{
		{"valid", `{"seed":1,"rules":[{"stage":"owl.detect","run":1,"kind":"panic"}]}`, true},
		{"unknown kind", `{"rules":[{"stage":"s","run":0,"kind":"explode"}]}`, false},
		{"delay without ms", `{"rules":[{"stage":"s","run":0,"kind":"delay"}]}`, false},
		{"max-steps without budget", `{"rules":[{"stage":"s","run":0,"kind":"max-steps"}]}`, false},
		{"bad json", `{`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.src))
			if tc.ok && err != nil {
				t.Fatalf("Parse: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("Parse accepted invalid plan")
			}
		})
	}
}

func TestNilPlanInjectsNothing(t *testing.T) {
	var p *Plan
	if err := p.Point(context.Background(), "owl.detect", 0); err != nil {
		t.Fatalf("nil plan Point: %v", err)
	}
	if got := p.StepBudget("owl.detect", 0, 42); got != 42 {
		t.Fatalf("nil plan StepBudget = %d, want 42", got)
	}
}

func TestPointPanicsTyped(t *testing.T) {
	p := &Plan{Rules: []Rule{{Stage: "owl.detect", Run: 3, Kind: KindPanic, Msg: "boom"}}}
	if err := p.Point(context.Background(), "owl.detect", 2); err != nil {
		t.Fatalf("non-matching run fired: %v", err)
	}
	defer func() {
		r := recover()
		pv, ok := r.(*Panic)
		if !ok {
			t.Fatalf("panic value %T, want *Panic", r)
		}
		if pv.Stage != "owl.detect" || pv.Run != 3 || pv.Msg != "boom" {
			t.Fatalf("panic value %+v", pv)
		}
	}()
	p.Point(context.Background(), "owl.detect", 3)
}

func TestPointErrorAndTimesBound(t *testing.T) {
	p := &Plan{Rules: []Rule{{Stage: "owl.rv", Run: 0, Kind: KindError, Times: 2}}}
	for i := 0; i < 2; i++ {
		err := p.Point(context.Background(), "owl.rv", 0)
		var fe *Err
		if !errors.As(err, &fe) {
			t.Fatalf("hit %d: got %v, want *Err", i, err)
		}
	}
	if err := p.Point(context.Background(), "owl.rv", 0); err != nil {
		t.Fatalf("rule exhausted after Times=2 but fired again: %v", err)
	}
}

func TestDelayHonorsContext(t *testing.T) {
	p := &Plan{Rules: []Rule{{Stage: "s", Run: -1, Kind: KindDelay, DelayMS: 60000}}}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := p.Point(ctx, "s", 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("delay cut short should return ctx error, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("delay ignored context")
	}
}

func TestStepBudgetOverride(t *testing.T) {
	p := &Plan{Rules: []Rule{{Stage: "owl.detect", Run: 1, Kind: KindMaxSteps, MaxSteps: 7}}}
	if got := p.StepBudget("owl.detect", 0, 1000); got != 1000 {
		t.Fatalf("run 0 budget = %d, want default", got)
	}
	if got := p.StepBudget("owl.detect", 1, 1000); got != 7 {
		t.Fatalf("run 1 budget = %d, want 7", got)
	}
	// KindMaxSteps must not fire at Point.
	if err := p.Point(context.Background(), "owl.detect", 1); err != nil {
		t.Fatalf("max-steps rule fired at Point: %v", err)
	}
}

// TestDiskFaults pins the storage-layer hook: disk rules fire at Disk
// (keyed by op + sequence, honoring Times) and never at Point or
// StepBudget, and a nil plan injects nothing.
func TestDiskFaults(t *testing.T) {
	p := &Plan{Rules: []Rule{
		{Stage: "persist.wal.append", Run: 1, Kind: KindTornWrite},
		{Stage: "persist.checkpoint.write", Run: -1, Kind: KindBitFlip, Bit: 13, Times: 1},
		{Stage: "persist.wal.fsync", Run: 0, Kind: KindFsyncError},
	}}
	if f := p.Disk("persist.wal.append", 0); f != nil {
		t.Fatalf("seq 0 fired: %+v", f)
	}
	f := p.Disk("persist.wal.append", 1)
	if f == nil || f.Kind != KindTornWrite {
		t.Fatalf("seq 1 = %+v, want torn-write", f)
	}
	f = p.Disk("persist.checkpoint.write", 7)
	if f == nil || f.Kind != KindBitFlip || f.Bit != 13 {
		t.Fatalf("checkpoint write = %+v, want bit-flip at 13", f)
	}
	if f = p.Disk("persist.checkpoint.write", 7); f != nil {
		t.Fatalf("Times=1 rule fired twice: %+v", f)
	}
	if f = p.Disk("persist.wal.fsync", 0); f == nil || f.Kind != KindFsyncError {
		t.Fatalf("fsync = %+v, want fsync-error", f)
	}
	// Disk kinds are invisible to the pipeline hooks.
	if err := p.Point(context.Background(), "persist.wal.append", 1); err != nil {
		t.Fatalf("disk rule fired at Point: %v", err)
	}
	if got := p.StepBudget("persist.wal.append", 1, 99); got != 99 {
		t.Fatalf("disk rule overrode step budget: %d", got)
	}
	var nilPlan *Plan
	if f := nilPlan.Disk("persist.wal.append", 1); f != nil {
		t.Fatalf("nil plan injected %+v", f)
	}
}

// TestNetFaults pins the replica-client hook: network rules fire at Net
// (keyed by op + sequence, honoring Times) and never at Point or Disk,
// net-slow requires a delay, and a nil plan injects nothing.
func TestNetFaults(t *testing.T) {
	p := &Plan{Rules: []Rule{
		{Stage: "replicate.get", Run: 1, Kind: KindNetDown},
		{Stage: "replicate.get.body", Run: -1, Kind: KindNetFlip, Bit: 9, Times: 1},
		{Stage: "replicate.put", Run: 0, Kind: KindNetSlow, DelayMS: 5},
	}}
	if f := p.Net("replicate.get", 0); f != nil {
		t.Fatalf("seq 0 fired: %+v", f)
	}
	f := p.Net("replicate.get", 1)
	if f == nil || f.Kind != KindNetDown {
		t.Fatalf("seq 1 = %+v, want net-down", f)
	}
	f = p.Net("replicate.get.body", 3)
	if f == nil || f.Kind != KindNetFlip || f.Bit != 9 {
		t.Fatalf("body = %+v, want net-flip at 9", f)
	}
	if f = p.Net("replicate.get.body", 3); f != nil {
		t.Fatalf("Times=1 rule fired twice: %+v", f)
	}
	if f = p.Net("replicate.put", 0); f == nil || f.Kind != KindNetSlow || f.DelayMS != 5 {
		t.Fatalf("put = %+v, want net-slow 5ms", f)
	}
	// Net kinds are invisible to the pipeline and disk hooks, and vice
	// versa.
	if err := p.Point(context.Background(), "replicate.get", 1); err != nil {
		t.Fatalf("net rule fired at Point: %v", err)
	}
	if f := p.Disk("replicate.get", 1); f != nil {
		t.Fatalf("net rule fired at Disk: %+v", f)
	}
	disk := &Plan{Rules: []Rule{{Stage: "replicate.get", Run: -1, Kind: KindBitFlip}}}
	if f := disk.Net("replicate.get", 0); f != nil {
		t.Fatalf("disk rule fired at Net: %+v", f)
	}
	var nilPlan *Plan
	if f := nilPlan.Net("replicate.get", 1); f != nil {
		t.Fatalf("nil plan injected %+v", f)
	}

	if _, err := Parse([]byte(`{"rules":[{"stage":"replicate.get","run":0,"kind":"net-slow"}]}`)); err == nil {
		t.Fatal("net-slow without delay_ms parsed")
	}
	if _, err := Parse([]byte(`{"rules":[{"stage":"replicate.get","run":0,"kind":"net-truncate"}]}`)); err != nil {
		t.Fatalf("net-truncate rejected: %v", err)
	}
}

// TestParseAcceptsDiskKinds: disk-fault plans load from JSON like any
// other plan.
func TestParseAcceptsDiskKinds(t *testing.T) {
	src := `{"seed":3,"rules":[
		{"stage":"persist.wal.append","run":-1,"kind":"short-write"},
		{"stage":"persist.wal.append","run":2,"kind":"torn-write"},
		{"stage":"persist.checkpoint.write","run":0,"kind":"bit-flip","bit":5},
		{"stage":"persist.checkpoint.fsync","run":0,"kind":"fsync-error"}]}`
	p, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 4 {
		t.Fatalf("rules = %d, want 4", len(p.Rules))
	}
	if f := p.Disk("persist.wal.append", 0); f == nil || f.Kind != KindShortWrite {
		t.Fatalf("parsed plan Disk = %+v, want short-write", f)
	}
}

// TestProbDeterministic pins the seeded coin: the same (seed, rule,
// stage, run) always decides the same way, and the decision is
// independent of call order.
func TestProbDeterministic(t *testing.T) {
	decide := func() []bool {
		p := &Plan{Seed: 42, Rules: []Rule{{Stage: "s", Run: -1, Kind: KindError, Prob: 0.5}}}
		out := make([]bool, 20)
		for run := 0; run < 20; run++ {
			out[run] = p.Point(context.Background(), "s", run) != nil
		}
		return out
	}
	a, b := decide(), decide()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run %d decided differently across plans", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("prob 0.5 fired %d/%d times; coin looks broken", fired, len(a))
	}
}
