// Package faultinject provides a seeded, deterministic fault plan for
// exercising the pipeline supervisor. OWL's dynamic stages deliberately
// run programs that crash, hang, and diverge — the paper treats a crash
// as evidence, not an error — so the surrounding pipeline must survive
// worker panics, runaway executions, and stage stalls. This package makes
// those failure modes reproducible: a Plan is a list of rules keyed by
// (stage, run index) that fire panics, spurious errors, artificial
// delays, or step-budget exhaustion at registered points in owl, eval,
// and the interpreter drivers.
//
// Determinism contract: whether a rule fires at a point depends only on
// the plan (rules, seed), the stage name, the run index, and how many
// times that exact point has already been hit (retries re-hit a point).
// Worker count and scheduling never influence an injection decision, so
// a faulted pipeline remains byte-identical across -workers values —
// the same discipline the rest of the repo holds the happy path to.
//
// All methods are nil-safe: a nil *Plan injects nothing, so call sites
// thread an optional plan without guards.
package faultinject

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// Kind names one failure mode a rule can inject.
type Kind string

// The injectable failure modes. KindPanic panics the worker goroutine
// (the supervisor quarantines it); KindError returns a spurious error
// from the point (exercises retry-with-backoff); KindDelay sleeps,
// context-aware, for DelayMS (trips per-stage deadlines); KindMaxSteps
// does not fire at Point — it overrides the interpreter step budget via
// StepBudget, forcing a MaxStepsHit truncation.
const (
	KindPanic    Kind = "panic"
	KindError    Kind = "error"
	KindDelay    Kind = "delay"
	KindMaxSteps Kind = "max-steps"
)

// Disk-fault kinds. These never fire at Point or StepBudget — storage
// layers (internal/serve/persist) consult them through Disk at each
// write/fsync call, keyed by operation name (the rule's Stage) and the
// per-target operation sequence number (the rule's Run). KindShortWrite
// writes a prefix of the buffer and then reports an error (ENOSPC
// mid-write); KindFsyncError skips the fsync and reports an error;
// KindTornWrite silently writes only a prefix (the page-cache tail a
// kill -9 loses); KindBitFlip silently flips one bit of the buffer
// before it lands (latent media corruption a checksum must catch).
const (
	KindShortWrite Kind = "short-write"
	KindFsyncError Kind = "fsync-error"
	KindTornWrite  Kind = "torn-write"
	KindBitFlip    Kind = "bit-flip"
)

// isDisk reports whether the kind is a disk fault (fired via Disk, not
// Point).
func isDisk(k Kind) bool {
	switch k {
	case KindShortWrite, KindFsyncError, KindTornWrite, KindBitFlip:
		return true
	}
	return false
}

// Network-fault kinds. Like disk faults these never fire at Point —
// the replica state-exchange client (internal/serve/replicate) consults
// them through Net at each request, keyed by operation name (the rule's
// Stage, e.g. "replicate.get" or "replicate.put") and the per-(peer,
// operation) sequence number (the rule's Run). KindNetDown fails the
// request without touching the wire (connection refused); KindNetSlow
// stalls the request for DelayMS before letting it proceed (a peer that
// answers slower than the client's timeout); KindNetTruncate cuts the
// response body in half after a successful status (a proxy or peer
// dying mid-transfer); KindNetFlip flips one bit of the response body
// (corruption only the blob's CRC framing catches).
const (
	KindNetDown     Kind = "net-down"
	KindNetSlow     Kind = "net-slow"
	KindNetTruncate Kind = "net-truncate"
	KindNetFlip     Kind = "net-flip"
)

// isNet reports whether the kind is a network fault (fired via Net, not
// Point).
func isNet(k Kind) bool {
	switch k {
	case KindNetDown, KindNetSlow, KindNetTruncate, KindNetFlip:
		return true
	}
	return false
}

// Rule is one fault-injection directive.
type Rule struct {
	// Stage is the exact stage name the rule targets (e.g. "owl.detect",
	// "owl.vulnverify", "eval.workloads").
	Stage string `json:"stage"`
	// Run is the run index within the stage the rule targets; -1 targets
	// every run of the stage.
	Run int `json:"run"`
	// Kind selects the failure mode.
	Kind Kind `json:"kind"`
	// Times bounds how many times the rule fires (0 = unlimited). A
	// transient failure is a rule with Times set: the first attempt
	// faults, the supervisor's retry succeeds.
	Times int `json:"times,omitempty"`
	// Prob, when in (0,1), fires the rule only at points whose seeded
	// hash of (stage, run) falls below it — a deterministic coin flip
	// keyed by the plan seed, never by wall clock or scheduling.
	Prob float64 `json:"prob,omitempty"`
	// DelayMS is the sleep for KindDelay and KindNetSlow, in
	// milliseconds.
	DelayMS int `json:"delay_ms,omitempty"`
	// MaxSteps is the step-budget override for KindMaxSteps.
	MaxSteps int `json:"max_steps,omitempty"`
	// Bit is the bit offset KindBitFlip/KindNetFlip flips, taken modulo
	// the buffer's bit length (so any value is valid for any write).
	Bit int `json:"bit,omitempty"`
	// Msg labels the injected panic/error (default "injected <kind>").
	Msg string `json:"msg,omitempty"`
}

// Plan is a deterministic fault plan: a seed plus rules. Construct via
// Load/Parse or literal; the zero value injects nothing.
type Plan struct {
	Seed  uint64 `json:"seed"`
	Rules []Rule `json:"rules"`

	mu    sync.Mutex
	fired map[string]int // per-rule fire counts, keyed by rule index + point
}

// Load reads a plan from a JSON file.
func Load(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("faultinject: %w", err)
	}
	return Parse(data)
}

// Parse decodes a plan from JSON bytes.
func Parse(data []byte) (*Plan, error) {
	p := &Plan{}
	if err := json.Unmarshal(data, p); err != nil {
		return nil, fmt.Errorf("faultinject: parse plan: %w", err)
	}
	for i, r := range p.Rules {
		switch r.Kind {
		case KindPanic, KindError, KindDelay, KindMaxSteps,
			KindShortWrite, KindFsyncError, KindTornWrite, KindBitFlip,
			KindNetDown, KindNetSlow, KindNetTruncate, KindNetFlip:
		default:
			return nil, fmt.Errorf("faultinject: rule %d: unknown kind %q", i, r.Kind)
		}
		if (r.Kind == KindDelay || r.Kind == KindNetSlow) && r.DelayMS <= 0 {
			return nil, fmt.Errorf("faultinject: rule %d: %s needs delay_ms > 0", i, r.Kind)
		}
		if r.Kind == KindMaxSteps && r.MaxSteps <= 0 {
			return nil, fmt.Errorf("faultinject: rule %d: max-steps needs max_steps > 0", i)
		}
	}
	return p, nil
}

// Panic is the value an injected panic carries, so supervisor recover
// sites can label the quarantine record deterministically.
type Panic struct {
	Stage string
	Run   int
	Msg   string
}

func (p *Panic) String() string {
	return fmt.Sprintf("injected panic at %s run %d: %s", p.Stage, p.Run, p.Msg)
}

// Err is the error type injected spurious failures return.
type Err struct {
	Stage string
	Run   int
	Msg   string
}

func (e *Err) Error() string {
	return fmt.Sprintf("injected error at %s run %d: %s", e.Stage, e.Run, e.Msg)
}

// matches reports whether the rule targets the point.
func (r *Rule) matches(stage string, run int) bool {
	return r.Stage == stage && (r.Run < 0 || r.Run == run)
}

// take consumes one firing of rule ri at the point, honoring Times and
// Prob; it returns false when the rule is exhausted or the seeded coin
// says no.
func (p *Plan) take(ri int, r *Rule, stage string, run int) bool {
	if r.Prob > 0 && r.Prob < 1 {
		if pointHash(p.Seed, uint64(ri), stage, run) >= r.Prob {
			return false
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fired == nil {
		p.fired = make(map[string]int)
	}
	key := fmt.Sprintf("%d|%s|%d", ri, stage, run)
	if r.Times > 0 && p.fired[key] >= r.Times {
		return false
	}
	p.fired[key]++
	return true
}

// Point is the injection hook workers call at the top of each run. It
// returns nil when no rule fires; returns an *Err for KindError; sleeps
// (context-aware) for KindDelay, returning ctx.Err() if the wait is cut
// short; and panics with a *Panic for KindPanic. KindMaxSteps rules do
// not fire here — see StepBudget.
func (p *Plan) Point(ctx context.Context, stage string, run int) error {
	if p == nil {
		return nil
	}
	for i := range p.Rules {
		r := &p.Rules[i]
		if r.Kind == KindMaxSteps || isDisk(r.Kind) || isNet(r.Kind) || !r.matches(stage, run) {
			continue
		}
		if !p.take(i, r, stage, run) {
			continue
		}
		msg := r.Msg
		if msg == "" {
			msg = "injected " + string(r.Kind)
		}
		switch r.Kind {
		case KindPanic:
			panic(&Panic{Stage: stage, Run: run, Msg: msg})
		case KindError:
			return &Err{Stage: stage, Run: run, Msg: msg}
		case KindDelay:
			t := time.NewTimer(time.Duration(r.DelayMS) * time.Millisecond)
			defer t.Stop()
			select {
			case <-t.C:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	return nil
}

// StepBudget returns the interpreter step budget for the point: the
// first matching KindMaxSteps rule's override, or def.
func (p *Plan) StepBudget(stage string, run int, def int) int {
	if p == nil {
		return def
	}
	for i := range p.Rules {
		r := &p.Rules[i]
		if r.Kind != KindMaxSteps || !r.matches(stage, run) {
			continue
		}
		if !p.take(i, r, stage, run) {
			continue
		}
		return r.MaxSteps
	}
	return def
}

// DiskFault describes one disk fault Disk decided to inject.
type DiskFault struct {
	Kind Kind
	Bit  int
	Msg  string
}

func (d *DiskFault) Error() string {
	return fmt.Sprintf("injected %s: %s", d.Kind, d.Msg)
}

// Disk is the storage-layer injection hook: op names the I/O point (the
// rule's Stage, e.g. "persist.wal.append" or "persist.checkpoint.fsync")
// and seq is the per-target sequence number of that operation (the
// rule's Run; -1 in a rule matches every occurrence). It returns the
// first matching disk rule's fault, or nil. The same determinism
// contract as Point holds: whether a fault fires depends only on the
// plan, the op, the sequence number, and prior hits of that exact
// point — never on scheduling or wall clock.
func (p *Plan) Disk(op string, seq int) *DiskFault {
	if p == nil {
		return nil
	}
	for i := range p.Rules {
		r := &p.Rules[i]
		if !isDisk(r.Kind) || !r.matches(op, seq) {
			continue
		}
		if !p.take(i, r, op, seq) {
			continue
		}
		msg := r.Msg
		if msg == "" {
			msg = "injected " + string(r.Kind)
		}
		return &DiskFault{Kind: r.Kind, Bit: r.Bit, Msg: msg}
	}
	return nil
}

// NetFault describes one network fault Net decided to inject.
type NetFault struct {
	Kind    Kind
	Bit     int
	DelayMS int
	Msg     string
}

func (n *NetFault) Error() string {
	return fmt.Sprintf("injected %s: %s", n.Kind, n.Msg)
}

// Net is the replica-client injection hook: op names the request point
// (the rule's Stage, e.g. "replicate.get") and seq is the per-(peer,
// operation) sequence number of that request (the rule's Run; -1 in a
// rule matches every occurrence). It returns the first matching network
// rule's fault, or nil. The same determinism contract as Point and Disk
// holds: whether a fault fires depends only on the plan, the op, the
// sequence number, and prior hits of that exact point — never on
// scheduling or wall clock.
func (p *Plan) Net(op string, seq int) *NetFault {
	if p == nil {
		return nil
	}
	for i := range p.Rules {
		r := &p.Rules[i]
		if !isNet(r.Kind) || !r.matches(op, seq) {
			continue
		}
		if !p.take(i, r, op, seq) {
			continue
		}
		msg := r.Msg
		if msg == "" {
			msg = "injected " + string(r.Kind)
		}
		return &NetFault{Kind: r.Kind, Bit: r.Bit, DelayMS: r.DelayMS, Msg: msg}
	}
	return nil
}

// pointHash maps (seed, rule, stage, run) to [0,1) with splitmix64 over
// an FNV-mixed key — the deterministic coin behind Rule.Prob.
func pointHash(seed, rule uint64, stage string, run int) float64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(stage); i++ {
		h = (h ^ uint64(stage[i])) * 1099511628211
	}
	h ^= rule * 0x9e3779b97f4a7c15
	h ^= uint64(run) << 1
	x := seed + h + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}
