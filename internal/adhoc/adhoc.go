// Package adhoc implements OWL's static ad-hoc synchronization detector
// (§5.1). Developers write semaphore-like synchronizations where one
// thread busy-waits on a shared variable until another thread sets it;
// TSAN/SKI cannot recognize these and flood the developer with benign
// reports. OWL mines them directly from race reports:
//
//  1. the report's read instruction sits inside a loop,
//  2. a forward intra-procedural data/control dependency from that read
//     reaches a branch that can break out of the loop, and
//  3. the report's write side stores a constant.
//
// Matching reports are tagged "adhoc sync"; the variable is annotated
// (race.Annotations) so the detector suppresses it on re-run — the paper's
// automatic TSAN-markup step. Unlike SyncFinder's purely static matching,
// the inputs here are real runtime reports, which is what makes the check
// simple and precise (paper §5.1, last paragraph).
package adhoc

import (
	"fmt"
	"sort"
	"strings"

	"github.com/conanalysis/owl/internal/ir"
	"github.com/conanalysis/owl/internal/race"
)

// Sync is one identified ad-hoc synchronization.
type Sync struct {
	// Var is the sync variable's memory name (e.g. "@thread_quit").
	Var string
	// Read is the busy-wait load; Write the flag store; ExitBr the
	// loop-exit branch the read feeds.
	Read, Write, ExitBr *ir.Instr
	// Report is the race report the sync was mined from.
	Report *race.Report
}

func (s *Sync) String() string {
	return fmt.Sprintf("adhoc sync on %s: wait-read %s, flag-write %s, exit %s",
		s.Var, s.Read.Loc(), s.Write.Loc(), s.ExitBr.Loc())
}

// Detector mines ad-hoc synchronizations from race reports.
type Detector struct {
	cfgs map[*ir.Func]*ir.CFG
}

// NewDetector returns a detector.
func NewDetector() *Detector {
	return &Detector{cfgs: make(map[*ir.Func]*ir.CFG)}
}

func (d *Detector) cfg(f *ir.Func) *ir.CFG {
	c := d.cfgs[f]
	if c == nil {
		c = ir.BuildCFG(f)
		d.cfgs[f] = c
	}
	return c
}

// Analyze inspects the reports and returns the ad-hoc synchronizations
// found, one per distinct racing-instruction pair (a sync variable with
// several waiters yields one Sync per waiter, all sharing Var — the way
// annotating the variable's accesses in source suppresses every pair).
// UniqueVars counts the distinct variables, the number the paper reports.
func (d *Detector) Analyze(reports []*race.Report) []*Sync {
	var out []*Sync
	seen := map[[2]*ir.Instr]bool{}
	for _, r := range reports {
		s := d.analyzeOne(r)
		if s == nil || seen[[2]*ir.Instr{s.Read, s.Write}] {
			continue
		}
		seen[[2]*ir.Instr{s.Read, s.Write}] = true
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Var != out[j].Var {
			return out[i].Var < out[j].Var
		}
		return out[i].Read.Index < out[j].Read.Index
	})
	return out
}

// UniqueVars counts the distinct sync variables among the syncs.
func UniqueVars(syncs []*Sync) int {
	vars := map[string]bool{}
	for _, s := range syncs {
		vars[s.Var] = true
	}
	return len(vars)
}

func (d *Detector) analyzeOne(r *race.Report) *Sync {
	rd, ok := r.ReadSide()
	if !ok || rd.Instr == nil || rd.Instr.Op != ir.OpLoad {
		return nil
	}
	wr := r.WriteSide()
	if wr.Instr == nil || wr.Instr.Op != ir.OpStore {
		return nil
	}
	// Step 3 (cheap, check first): the write stores a constant.
	if wr.Instr.Args[0].Kind != ir.OperandConst {
		return nil
	}
	read := rd.Instr
	fn := read.Fn
	if fn == nil {
		return nil
	}
	cfg := d.cfg(fn)

	// Step 1: the read is inside a loop — and the loop must be a pure
	// busy-wait ("one thread is busy waiting on a shared variable"). A
	// loop that performs real work (stores, calls beyond timing
	// intrinsics) is not an ad-hoc synchronization even if a flag read
	// controls its exit: the SSDB binlog cleaner (Figure 6) and the
	// Chrome profiler loop are exactly such cases, and annotating them
	// would hide their vulnerable races — consistent with the paper
	// annotating zero ad-hoc syncs for SSDB (Table 3).
	loops := spinLoops(fn, cfg.LoopsContaining(read.Block.Name))
	if len(loops) == 0 {
		return nil
	}

	// Step 2: forward intra-procedural data/control dependency from the
	// read reaches a branch that exits one of those loops.
	corrupt := map[string]bool{}
	if read.Dst != "" {
		corrupt[read.Dst] = true
	}
	for _, in := range fn.Instrs() {
		if in.Index <= read.Index {
			continue
		}
		dep := false
		for _, u := range in.Uses() {
			if u.Kind == ir.OperandReg && corrupt[u.Name] {
				dep = true
				break
			}
		}
		if !dep {
			continue
		}
		if in.Op == ir.OpBr {
			for _, l := range loops {
				for _, exit := range l.ExitBranches(fn) {
					if exit == in {
						return &Sync{
							Var:    varName(r),
							Read:   read,
							Write:  wr.Instr,
							ExitBr: in,
							Report: r,
						}
					}
				}
			}
		}
		if in.Dst != "" {
			corrupt[in.Dst] = true
		}
	}
	return nil
}

// spinLoops filters loops down to pure busy-wait loops: no stores and no
// calls other than the timing/yield intrinsics inside the loop body.
func spinLoops(fn *ir.Func, loops []*ir.Loop) []*ir.Loop {
	var out []*ir.Loop
	for _, l := range loops {
		if isSpinLoop(fn, l) {
			out = append(out, l)
		}
	}
	return out
}

func isSpinLoop(fn *ir.Func, l *ir.Loop) bool {
	for name := range l.Blocks {
		for _, in := range fn.Block(name).Instrs {
			switch in.Op {
			case ir.OpStore:
				return false
			case ir.OpCall:
				c := in.Callee()
				if c.Kind != ir.OperandFunc {
					return false
				}
				switch c.Name {
				case "yield", "sleep", "io_delay":
					// Waiting politely is still waiting.
				default:
					return false
				}
			}
		}
	}
	return true
}

// varName returns the base memory name of the report's racing variable
// (stripping any "+offset").
func varName(r *race.Report) string {
	n := r.AddrName
	if i := strings.IndexByte(n, '+'); i >= 0 {
		n = n[:i]
	}
	return n
}

// Annotate installs the syncs into an annotation set (creating one when
// ann is nil) and returns it; pass the result to the race detector's
// Benign field for the §5.1 re-run. Annotation is per racing-instruction
// pair (like TSAN markups on the sync accesses), NOT per variable:
// another racy access to the same memory — the SSDB db pointer read
// inside del_range, say — must keep being reported.
func Annotate(syncs []*Sync, ann *race.Annotations) *race.Annotations {
	if ann == nil {
		ann = race.NewAnnotations()
	}
	for _, s := range syncs {
		ann.AddPair(s.Read, s.Write)
	}
	return ann
}
