package adhoc

import (
	"testing"

	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/ir"
	"github.com/conanalysis/owl/internal/race"
	"github.com/conanalysis/owl/internal/sched"
)

// adhocSrc is the canonical pattern: a worker busy-waits on @ready until
// the main thread stores the constant 1.
const adhocSrc = `
global @ready = 0
global @data = 0

func @worker() {
entry:
  jmp wait
wait:
  %r = load @ready
  %c = icmp ne %r, 0
  br %c, go, wait
go:
  %d = load @data
  call @print(%d)
  ret 0
}
func @main() {
entry:
  %t = call @spawn(@worker)
  store 42, @data
  store 1, @ready
  %r = call @join(%t)
  ret 0
}
`

// nonAdhocSrc races on a plain counter: the write is not a constant and
// the read feeds no loop exit.
const nonAdhocSrc = `
global @count = 0

func @worker() {
entry:
  %v = load @count
  %v2 = add %v, 1
  store %v2, @count
  ret 0
}
func @main() {
entry:
  %t = call @spawn(@worker)
  %v = load @count
  %v2 = add %v, 1
  store %v2, @count
  %r = call @join(%t)
  ret 0
}
`

func detectRaces(t *testing.T, src string, seed uint64) []*race.Report {
	t.Helper()
	mod := ir.MustParse("adhoc_test.oir", src)
	d := race.NewDetector()
	m, err := interp.New(interp.Config{
		Module: mod, Sched: sched.NewRandom(seed), Observers: []interp.Observer{d},
		MaxSteps: 100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	return d.Reports()
}

func TestRecognizesAdhocSync(t *testing.T) {
	var reports []*race.Report
	for seed := uint64(1); seed < 20 && len(reports) == 0; seed++ {
		reports = detectRaces(t, adhocSrc, seed)
	}
	if len(reports) == 0 {
		t.Fatal("no race reports produced for adhoc pattern under any seed")
	}
	syncs := NewDetector().Analyze(reports)
	if len(syncs) == 0 {
		t.Fatalf("adhoc sync not recognized; reports:\n%v", reports[0])
	}
	s := syncs[0]
	if s.Var != "@ready" {
		t.Errorf("sync var = %q, want @ready", s.Var)
	}
	if s.Write.Args[0].Kind != ir.OperandConst {
		t.Errorf("flag write is not a constant store")
	}
	if s.ExitBr.Op != ir.OpBr {
		t.Errorf("exit is not a branch")
	}
}

func TestRejectsPlainRace(t *testing.T) {
	var reports []*race.Report
	for seed := uint64(1); seed < 30 && len(reports) == 0; seed++ {
		reports = detectRaces(t, nonAdhocSrc, seed)
	}
	if len(reports) == 0 {
		t.Skip("scheduler never produced the racy interleaving")
	}
	syncs := NewDetector().Analyze(reports)
	if len(syncs) != 0 {
		t.Errorf("plain counter race misclassified as adhoc sync: %v", syncs[0])
	}
}

func TestRejectsConstantWriteOutsideLoopExit(t *testing.T) {
	// The read is in a loop but never controls a loop exit: a sampling
	// loop reading a flag only to print it.
	src := `
global @flag = 0

func @worker() {
entry:
  jmp loop
loop:
  %i = phi [entry: 0], [loop: %i2]
  %f = load @flag
  call @print(%f)
  %i2 = add %i, 1
  %c = icmp lt %i2, 5
  br %c, loop, done
done:
  ret 0
}
func @main() {
entry:
  %t = call @spawn(@worker)
  store 1, @flag
  %r = call @join(%t)
  ret 0
}
`
	var reports []*race.Report
	for seed := uint64(1); seed < 30 && len(reports) == 0; seed++ {
		reports = detectRaces(t, src, seed)
	}
	if len(reports) == 0 {
		t.Skip("scheduler never produced the racy interleaving")
	}
	syncs := NewDetector().Analyze(reports)
	if len(syncs) != 0 {
		t.Errorf("sampling loop misclassified as adhoc sync: %v", syncs[0])
	}
}

func TestAnnotateSuppressesOnReRun(t *testing.T) {
	// Annotation is per instruction pair inside one module (the pipeline
	// never reparses), so detection and re-run must share the module.
	mod := ir.MustParse("adhoc_test.oir", adhocSrc)
	detectOn := func(seed uint64, benign *race.Annotations) []*race.Report {
		d := race.NewDetector()
		d.Benign = benign
		m, err := interp.New(interp.Config{
			Module: mod, Sched: sched.NewRandom(seed), Observers: []interp.Observer{d},
			MaxSteps: 100000,
		})
		if err != nil {
			t.Fatal(err)
		}
		m.Run()
		return d.Reports()
	}

	var reports []*race.Report
	seedUsed := uint64(0)
	for seed := uint64(1); seed < 20 && len(reports) == 0; seed++ {
		reports = detectOn(seed, nil)
		seedUsed = seed
	}
	if len(reports) == 0 {
		t.Fatal("no reports")
	}
	syncs := NewDetector().Analyze(reports)
	if len(syncs) == 0 {
		t.Fatal("no syncs")
	}
	ann := Annotate(syncs, nil)
	if ann.Len() != 1 {
		t.Fatalf("annotations = %d entries, want 1", ann.Len())
	}

	// Re-run with the same seed and the annotations installed: the
	// adhoc-sync report must disappear.
	for _, r := range detectOn(seedUsed, ann) {
		if r.AddrName == "@ready" {
			t.Errorf("annotated sync still reported: %v", r)
		}
	}
}

func TestDeduplicatesByPairAndVariable(t *testing.T) {
	// Dedup is per instruction pair within one module, so detection runs
	// must share the module (the pipeline never reparses).
	mod := ir.MustParse("adhoc_test.oir", adhocSrc)
	var all []*race.Report
	for seed := uint64(1); seed < 10; seed++ {
		d := race.NewDetector()
		m, err := interp.New(interp.Config{
			Module: mod, Sched: sched.NewRandom(seed), Observers: []interp.Observer{d},
			MaxSteps: 100000,
		})
		if err != nil {
			t.Fatal(err)
		}
		m.Run()
		all = append(all, d.Reports()...)
	}
	syncs := NewDetector().Analyze(all)
	if len(syncs) > 1 {
		t.Errorf("got %d syncs for one pair, want dedup to 1", len(syncs))
	}
	if n := UniqueVars(syncs); len(syncs) > 0 && n != 1 {
		t.Errorf("unique vars = %d, want 1", n)
	}
}
