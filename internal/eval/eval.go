// Package eval regenerates the paper's evaluation: it runs the OWL
// pipeline over the workload models and produces the rows of Tables 1-4
// plus the per-figure end-to-end experiments. Both the table binaries
// (cmd/owl-tables, cmd/owl-study) and the benchmark harness
// (bench_test.go) are thin wrappers over this package.
package eval

import (
	"context"
	"fmt"
	"time"

	"github.com/conanalysis/owl/internal/adhoc"
	"github.com/conanalysis/owl/internal/attack"
	"github.com/conanalysis/owl/internal/faultinject"
	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/ir"
	"github.com/conanalysis/owl/internal/metrics"
	"github.com/conanalysis/owl/internal/owl"
	"github.com/conanalysis/owl/internal/race"
	"github.com/conanalysis/owl/internal/ski"
	"github.com/conanalysis/owl/internal/vuln"
	"github.com/conanalysis/owl/internal/workloads"
)

// Config tunes an evaluation run; the zero value gets sensible defaults.
type Config struct {
	// Noise is the workload noise level (default NoiseLight; the table
	// binaries use NoiseFull to approximate the paper's report shape).
	Noise workloads.NoiseLevel
	// DetectRuns seeds the TSAN-style detection phase (default 8).
	DetectRuns int
	// KernelRuns / KernelDecisions bound the SKI-style exploration
	// (defaults 96 / 10).
	KernelRuns      int
	KernelDecisions int
	// DisableVulnVerify skips the slowest stage (useful in quick tests).
	DisableVulnVerify bool
	// Engine selects the interpreter execution engine for every machine
	// the evaluation builds — application pipelines and the SKI-style
	// kernel exploration alike (default interp.EngineTree; see
	// owl.Options.Engine).
	Engine interp.Engine
	// Explore selects the detect-stage exploration mode for application
	// workloads (default owl.ExploreFixed); Budget is the coverage-mode
	// run budget (0 = DetectRuns). See owl.Options.
	Explore owl.ExploreMode
	Budget  int
	// Seed is the base seed for coverage-mode exploration and for the
	// predictive detect stage (see owl.Options.Seed).
	Seed uint64
	// MaxSteps, when > 0, overrides every workload's interpreter step
	// budget (see owl.Options; 0 keeps each workload's own budget).
	MaxSteps int
	// Predict switches application workloads to the predictive detect
	// stage (seed traces → predicted pairs → steered confirmation);
	// PredictReversal additionally enables the optimistic sync-reversal
	// arm. See owl.Options.
	Predict         bool
	PredictReversal bool
	// SnapCache is the per-stage snapshot-cache entry budget for
	// coverage-mode exploration (0 disables prefix sharing; see
	// owl.Options.SnapCache — results are identical either way).
	SnapCache int
	// PipelineWorkers bounds the owl pipeline's inner worker pool per
	// workload (seeded detections and the verification loops). Default 1:
	// BuildTablesParallel already fans out across workloads, so nesting
	// pools is opt-in.
	PipelineWorkers int
	// Metrics, when non-nil, receives per-stage instrumentation from the
	// evaluation, the pipelines it runs, and the study.
	Metrics *metrics.Collector
	// Ctx cancels the build cooperatively (default context.Background());
	// BuildTablesParallel also derives its pool context from it so the
	// first failed workload stops the others promptly.
	Ctx context.Context
	// StageTimeout / Retries / Faults ride down into every workload's
	// owl pipeline (see owl.Options). The pipelines run fail-fast by
	// default: a workload whose stage faults fails the build with an
	// error naming the workload and stage, rather than silently
	// degrading a table. AllowDegraded inverts that (owl-tables
	// -fail-fast=false), letting faulted stages degrade instead.
	StageTimeout  time.Duration
	Retries       int
	Faults        *faultinject.Plan
	AllowDegraded bool
}

func (c Config) withDefaults() Config {
	if c.Noise == 0 {
		c.Noise = workloads.NoiseLight
	}
	if c.DetectRuns <= 0 {
		c.DetectRuns = 8
	}
	if c.KernelRuns <= 0 {
		c.KernelRuns = 96
	}
	if c.KernelDecisions <= 0 {
		c.KernelDecisions = 10
	}
	return c
}

// MatchedAttack pairs a modelled attack with the pipeline evidence that
// found it.
type MatchedAttack struct {
	Spec    workloads.AttackSpec
	Finding *vuln.Finding
	// Confirmed is true when the dynamic vulnerability verifier reached
	// the site (application workloads only; the paper leaves kernel
	// dynamic verification to future work, §8.3).
	Confirmed bool
}

// ProgramEval is the pipeline outcome for one workload, merged across its
// attack recipes.
type ProgramEval struct {
	W *workloads.Workload

	// Table-3 accounting.
	RawReports         int
	AdhocSyncs         int
	AfterAnnotation    int
	VerifierEliminated int
	Remaining          int
	Findings           int
	AnalysisTime       time.Duration

	// Table-2 accounting.
	AttacksModelled int
	AttacksFound    []MatchedAttack

	// per-recipe pipeline results (application workloads).
	Results []*owl.Result
}

// ReductionRatio mirrors owl.Stats.ReductionRatio for the merged numbers.
func (pe *ProgramEval) ReductionRatio() float64 {
	if pe.RawReports == 0 {
		return 0
	}
	return 1 - float64(pe.Remaining)/float64(pe.RawReports)
}

// recipesToRun returns the recipes the evaluation drives: every attack
// recipe, or the first (benign) recipe when the workload has no attacks.
func recipesToRun(w *workloads.Workload) []workloads.Recipe {
	seen := map[string]bool{}
	var out []workloads.Recipe
	for _, a := range w.Attacks {
		if !seen[a.InputRecipe] {
			seen[a.InputRecipe] = true
			out = append(out, w.Recipe(a.InputRecipe))
		}
	}
	if len(out) == 0 && len(w.Recipes) > 0 {
		out = append(out, w.Recipes[0])
	}
	return out
}

// EvalWorkload runs the full pipeline for one workload.
func EvalWorkload(w *workloads.Workload, cfg Config) (*ProgramEval, error) {
	cfg = cfg.withDefaults()
	if w.Kernel {
		return evalKernel(w, cfg)
	}
	return evalApplication(w, cfg)
}

func evalApplication(w *workloads.Workload, cfg Config) (*ProgramEval, error) {
	pe := &ProgramEval{W: w, AttacksModelled: len(w.Attacks)}
	rawIDs := map[string]bool{}
	annIDs := map[string]bool{}
	elimIDs := map[string]bool{}
	adhocVars := map[string]bool{}
	findingKeys := map[string]bool{}

	for _, rec := range recipesToRun(w) {
		if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
			return nil, fmt.Errorf("eval %s/%s: %w", w.Name, rec.Name, cfg.Ctx.Err())
		}
		maxSteps := w.MaxSteps
		if cfg.MaxSteps > 0 {
			maxSteps = cfg.MaxSteps
		}
		res, err := owl.Run(owl.Program{
			Module: w.Module, Entry: w.Entry, Inputs: rec.Inputs, MaxSteps: maxSteps,
		}, owl.Options{
			Engine:            cfg.Engine,
			DetectRuns:        cfg.DetectRuns,
			Explore:           cfg.Explore,
			Budget:            cfg.Budget,
			Seed:              cfg.Seed,
			SnapCache:         cfg.SnapCache,
			Predict:           cfg.Predict,
			PredictReversal:   cfg.PredictReversal,
			DisableVulnVerify: cfg.DisableVulnVerify,
			Workers:           cfg.PipelineWorkers,
			Metrics:           cfg.Metrics,
			Ctx:               cfg.Ctx,
			StageTimeout:      cfg.StageTimeout,
			Retries:           cfg.Retries,
			Faults:            cfg.Faults,
			// Degrading a table row would silently skew the evaluation, so
			// the tables pipeline opts out of graceful degradation unless
			// the operator explicitly allowed it.
			FailFast: !cfg.AllowDegraded,
		})
		if err != nil {
			return nil, fmt.Errorf("eval %s/%s: %w", w.Name, rec.Name, err)
		}
		pe.Results = append(pe.Results, res)
		pe.AnalysisTime += res.Stats.AnalysisTime
		for _, r := range res.Raw {
			rawIDs[r.ID()] = true
		}
		for _, r := range res.Annotated {
			annIDs[r.ID()] = true
		}
		for _, s := range res.Syncs {
			adhocVars[s.Var] = true
		}
		for _, h := range res.Hints {
			if !h.Verified {
				elimIDs[h.Report.ID()] = true
			}
		}
		for id, fs := range res.FindingsByReport {
			for _, f := range fs {
				findingKeys[id+"|"+f.Site.FullName()+f.Dep.String()] = true
			}
		}
		// Match modelled attacks against confirmed pipeline attacks.
		for i := range w.Attacks {
			spec := w.Attacks[i]
			if spec.InputRecipe != rec.Name {
				continue
			}
			if m := matchAttack(spec, res); m != nil {
				pe.AttacksFound = append(pe.AttacksFound, *m)
			}
		}
	}
	pe.RawReports = len(rawIDs)
	pe.AdhocSyncs = len(adhocVars)
	pe.AfterAnnotation = len(annIDs)
	pe.VerifierEliminated = len(elimIDs)
	pe.Remaining = pe.AfterAnnotation - pe.VerifierEliminated
	pe.Findings = len(findingKeys)
	return pe, nil
}

// matchAttack looks for pipeline evidence of the modelled attack: a
// finding whose site sits in the spec's function (and callee, if given),
// preferring dynamically confirmed ones.
func matchAttack(spec workloads.AttackSpec, res *owl.Result) *MatchedAttack {
	match := func(f *vuln.Finding) bool {
		if f.Site.Fn == nil || f.Site.Fn.Name != spec.SiteFunc {
			return false
		}
		if spec.SiteCallee != "" {
			if !f.Site.IsCall() || f.Site.Callee().Kind != ir.OperandFunc ||
				f.Site.Callee().Name != spec.SiteCallee {
				return false
			}
		}
		return true
	}
	for _, atk := range res.Attacks {
		if match(atk.Finding) {
			return &MatchedAttack{Spec: spec, Finding: atk.Finding, Confirmed: true}
		}
	}
	for _, fs := range res.FindingsByReport {
		for _, f := range fs {
			if match(f) {
				return &MatchedAttack{Spec: spec, Finding: f}
			}
		}
	}
	return nil
}

func evalKernel(w *workloads.Workload, cfg Config) (*ProgramEval, error) {
	pe := &ProgramEval{W: w, AttacksModelled: len(w.Attacks)}
	rawIDs := map[string]bool{}
	annIDs := map[string]bool{}
	adhocVars := map[string]bool{}
	findingKeys := map[string]bool{}

	for _, rec := range recipesToRun(w) {
		if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
			return nil, fmt.Errorf("eval %s/%s: %w", w.Name, rec.Name, cfg.Ctx.Err())
		}
		maxSteps := w.MaxSteps
		if cfg.MaxSteps > 0 {
			maxSteps = cfg.MaxSteps
		}
		base := interp.Config{Module: w.Module, Entry: w.Entry, Inputs: rec.Inputs, MaxSteps: maxSteps, Engine: cfg.Engine}
		det := &ski.Detector{MaxRuns: cfg.KernelRuns, MaxDecisions: cfg.KernelDecisions}
		reports, _, err := det.Detect(base)
		if err != nil {
			return nil, fmt.Errorf("eval %s/%s: %w", w.Name, rec.Name, err)
		}
		var races []*race.Report
		for _, r := range reports {
			races = append(races, r.Race)
			rawIDs[r.Race.ID()] = true
		}

		// §5.1 on kernel reports, then re-explore with annotations.
		syncs := adhoc.NewDetector().Analyze(races)
		for _, s := range syncs {
			adhocVars[s.Var] = true
		}
		after := reports
		if len(syncs) > 0 {
			det2 := &ski.Detector{MaxRuns: cfg.KernelRuns, MaxDecisions: cfg.KernelDecisions,
				Benign: adhoc.Annotate(syncs, nil)}
			after, _, err = det2.Detect(base)
			if err != nil {
				return nil, fmt.Errorf("eval %s/%s re-run: %w", w.Name, rec.Name, err)
			}
		}
		for _, r := range after {
			annIDs[r.Race.ID()] = true
		}

		// Algorithm 1 from each report's best watched read. The paper did
		// not run the dynamic verifiers on kernels (§8.3), so kernel
		// attacks match on findings only.
		analyzer := vuln.NewAnalyzer(w.Module)
		start := time.Now()
		var all []*vuln.Finding
		for _, r := range after {
			in, stack, ok := r.BestRead()
			if !ok {
				continue
			}
			fs := analyzer.Analyze(in, stack)
			all = append(all, fs...)
			for _, f := range fs {
				findingKeys[r.Race.ID()+"|"+f.Site.FullName()+f.Dep.String()] = true
			}
		}
		pe.AnalysisTime += time.Since(start)
		for i := range w.Attacks {
			spec := w.Attacks[i]
			if spec.InputRecipe != rec.Name {
				continue
			}
			for _, f := range all {
				if f.Site.Fn != nil && f.Site.Fn.Name == spec.SiteFunc &&
					(spec.SiteCallee == "" ||
						(f.Site.IsCall() && f.Site.Callee().Kind == ir.OperandFunc &&
							f.Site.Callee().Name == spec.SiteCallee)) {
					pe.AttacksFound = append(pe.AttacksFound, MatchedAttack{Spec: spec, Finding: f})
					break
				}
			}
		}
	}
	pe.RawReports = len(rawIDs)
	pe.AdhocSyncs = len(adhocVars)
	pe.AfterAnnotation = len(annIDs)
	pe.Remaining = pe.AfterAnnotation
	pe.Findings = len(findingKeys)
	return pe, nil
}

// ExploitCampaign runs the attack drivers for Table 4.
func ExploitCampaign(w *workloads.Workload, maxRuns int) ([]*attack.Result, error) {
	d := attack.NewDriver(w)
	if maxRuns > 0 {
		d.MaxRuns = maxRuns
	}
	var out []*attack.Result
	for _, spec := range w.Attacks {
		r, err := d.Exploit(spec)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
