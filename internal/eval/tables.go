package eval

import (
	"fmt"
	"time"

	"github.com/conanalysis/owl/internal/attack"
	"github.com/conanalysis/owl/internal/study"
	"github.com/conanalysis/owl/internal/workloads"
)

// Tables bundles the regenerated evaluation tables plus the underlying
// per-program evaluations, so callers (cmd/owl-tables, bench_test.go,
// EXPERIMENTS.md generation) compute everything once.
type Tables struct {
	Cfg      Config
	Programs []*ProgramEval
	Study    *study.Result
	Exploits map[string][]*attack.Result
	Elapsed  time.Duration
	// Stable elides the timing fields from the rendered tables (Table 3's
	// A.C. column), leaving only run-to-run deterministic output — the
	// mode behind `owl-tables -stable` and the `make golden` gate.
	Stable bool
}

// BuildTables evaluates every workload and runs the exploit campaigns.
func BuildTables(cfg Config) (*Tables, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	defer cfg.Metrics.Stage("eval.total")()
	t := &Tables{Cfg: cfg, Exploits: make(map[string][]*attack.Result)}
	stop := cfg.Metrics.Stage("eval.workloads")
	for _, w := range workloads.All(cfg.Noise) {
		pe, err := EvalWorkload(w, cfg)
		if err != nil {
			return nil, err
		}
		t.Programs = append(t.Programs, pe)
		ex, err := ExploitCampaign(w, 100)
		if err != nil {
			return nil, err
		}
		t.Exploits[w.Name] = ex
	}
	stop()
	st, err := study.Run(study.Config{
		Noise: cfg.Noise, DetectRuns: cfg.DetectRuns, Metrics: cfg.Metrics,
	})
	if err != nil {
		return nil, err
	}
	t.Study = st
	t.Elapsed = time.Since(start)
	return t, nil
}

// Table1 regenerates the study-summary table: per program — the studied
// program's LoC and attack count (paper values, for reference) next to the
// model's attack count and raw race-report count. The paper's absolute
// report counts came from multi-million-line programs; the model preserves
// the ordering and ratios, not the magnitudes.
func (t *Tables) Table1() [][]string {
	rows := [][]string{{
		"Name", "Paper LoC", "# Concurrency attacks (model)",
		"# Race reports (model)", "# Race reports (paper)",
	}}
	totalAtk, totalRep := 0, 0
	for _, pe := range t.Programs {
		if pe.W.Name == "memcached" {
			continue // Table 3 only, as in the paper
		}
		rows = append(rows, []string{
			pe.W.RealName,
			pe.W.PaperLoC,
			fmt.Sprintf("%d", pe.AttacksModelled),
			fmt.Sprintf("%d", pe.RawReports),
			fmt.Sprintf("%d", pe.W.PaperRaceReports),
		})
		totalAtk += pe.AttacksModelled
		totalRep += pe.RawReports
	}
	rows = append(rows, []string{"Total", "", fmt.Sprintf("%d", totalAtk),
		fmt.Sprintf("%d", totalRep), ""})
	return rows
}

// Table2 regenerates the detection-results table: per program — modelled
// attacks, attacks OWL found, and OWL's report count (findings).
func (t *Tables) Table2() [][]string {
	rows := [][]string{{
		"Name", "# atks", "# atks found", "# OWL's reports",
	}}
	totA, totF, totR := 0, 0, 0
	for _, pe := range t.Programs {
		if pe.AttacksModelled == 0 && pe.W.Name == "memcached" {
			continue
		}
		rows = append(rows, []string{
			pe.W.RealName,
			fmt.Sprintf("%d", pe.AttacksModelled),
			fmt.Sprintf("%d", len(pe.AttacksFound)),
			fmt.Sprintf("%d", pe.Findings),
		})
		totA += pe.AttacksModelled
		totF += len(pe.AttacksFound)
		totR += pe.Findings
	}
	rows = append(rows, []string{"Total", fmt.Sprintf("%d", totA),
		fmt.Sprintf("%d", totF), fmt.Sprintf("%d", totR)})
	return rows
}

// Table3 regenerates the reduction table: R.R. raw reports, A.S. ad-hoc
// syncs annotated, R.V.E. race-verifier eliminations, R. remaining, and
// A.C. the static-analysis cost.
func (t *Tables) Table3() [][]string {
	rows := [][]string{{
		"Name", "R.R.", "A.S.", "R.V.E.", "R.", "A.C.",
	}}
	totRR, totAS, totRVE, totR := 0, 0, 0, 0
	for _, pe := range t.Programs {
		rve := fmt.Sprintf("%d", pe.VerifierEliminated)
		if pe.W.Kernel {
			rve = "N/A" // the paper leaves kernel dynamic verification to future work
		}
		ac := pe.AnalysisTime.Round(time.Millisecond).String()
		if t.Stable {
			ac = "-" // timings are not deterministic; elided for golden diffs
		}
		rows = append(rows, []string{
			pe.W.RealName,
			fmt.Sprintf("%d", pe.RawReports),
			fmt.Sprintf("%d", pe.AdhocSyncs),
			rve,
			fmt.Sprintf("%d", pe.Remaining),
			ac,
		})
		totRR += pe.RawReports
		totAS += pe.AdhocSyncs
		totRVE += pe.VerifierEliminated
		totR += pe.Remaining
	}
	rows = append(rows, []string{"Total", fmt.Sprintf("%d", totRR),
		fmt.Sprintf("%d", totAS), fmt.Sprintf("%d", totRVE),
		fmt.Sprintf("%d", totR), ""})
	return rows
}

// ReductionRatio returns the overall report-reduction ratio across all
// programs (the paper's 94.3% headline).
func (t *Tables) ReductionRatio() float64 {
	raw, remain := 0, 0
	for _, pe := range t.Programs {
		raw += pe.RawReports
		remain += pe.Remaining
	}
	if raw == 0 {
		return 0
	}
	return 1 - float64(remain)/float64(raw)
}

// Table4 regenerates the known-attack table: program/version, vulnerability
// type, subtle inputs, plus the measured repetitions-to-exploit.
func (t *Tables) Table4() [][]string {
	rows := [][]string{{
		"Name", "Vul. Type", "Subtle Inputs", "Repetitions (measured)",
	}}
	for _, pe := range t.Programs {
		for _, ex := range t.Exploits[pe.W.Name] {
			reps := "not triggered"
			if ex.Succeeded {
				reps = fmt.Sprintf("%d", ex.Runs)
			}
			rows = append(rows, []string{
				ex.Spec.ID, ex.Spec.VulnType, ex.Spec.SubtleInput, reps,
			})
		}
	}
	return rows
}

// AttacksFoundTotal counts attacks found across all programs.
func (t *Tables) AttacksFoundTotal() (found, modelled int) {
	for _, pe := range t.Programs {
		found += len(pe.AttacksFound)
		modelled += pe.AttacksModelled
	}
	return found, modelled
}
