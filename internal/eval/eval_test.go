package eval

import (
	"strings"
	"testing"

	"github.com/conanalysis/owl/internal/workloads"
)

func TestEvalWorkloadFindsAllAttacks(t *testing.T) {
	// Table 2's headline: OWL detects all evaluated attacks.
	for _, w := range workloads.All(workloads.NoiseLight) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			pe, err := EvalWorkload(w, Config{})
			if err != nil {
				t.Fatal(err)
			}
			if len(pe.AttacksFound) != pe.AttacksModelled {
				missing := map[string]bool{}
				for _, a := range w.Attacks {
					missing[a.ID] = true
				}
				for _, m := range pe.AttacksFound {
					delete(missing, m.Spec.ID)
				}
				t.Errorf("found %d/%d attacks; missing: %v",
					len(pe.AttacksFound), pe.AttacksModelled, missing)
			}
			if pe.AttacksModelled > 0 && pe.RawReports == 0 {
				t.Errorf("no raw reports at all")
			}
		})
	}
}

func TestApplicationAttacksDynamicallyConfirmed(t *testing.T) {
	// Non-kernel attacks must be confirmed by the dynamic vulnerability
	// verifier (the paper's verifiers cover applications; kernels are
	// future work, §8.3).
	for _, name := range []string{"libsafe", "ssdb", "mysql", "apache", "chrome"} {
		w := workloads.Get(name, workloads.NoiseLight)
		pe, err := EvalWorkload(w, Config{})
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range pe.AttacksFound {
			if !m.Confirmed {
				t.Errorf("%s/%s: found but not dynamically confirmed", name, m.Spec.ID)
			}
		}
	}
}

func TestKernelEvalUsesFindingsOnly(t *testing.T) {
	w := workloads.Get("linux", workloads.NoiseLight)
	pe, err := EvalWorkload(w, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pe.AttacksFound) != 2 {
		t.Fatalf("kernel attacks found = %d, want 2", len(pe.AttacksFound))
	}
	for _, m := range pe.AttacksFound {
		if m.Confirmed {
			t.Errorf("kernel attack %s marked confirmed; kernel dynamic verification is future work", m.Spec.ID)
		}
	}
	if pe.VerifierEliminated != 0 {
		t.Errorf("kernel eval ran the race verifier (eliminated %d)", pe.VerifierEliminated)
	}
}

func TestReductionShape(t *testing.T) {
	// The pipeline must strictly reduce reports for every noisy program
	// and keep the attack races (checked above); the full-noise shape
	// (≈90% total, the paper's 94.3%) is exercised by the benchmarks.
	for _, name := range []string{"apache", "mysql", "chrome", "memcached"} {
		w := workloads.Get(name, workloads.NoiseLight)
		pe, err := EvalWorkload(w, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if pe.Remaining >= pe.RawReports {
			t.Errorf("%s: no reduction (%d raw -> %d remaining)", name, pe.RawReports, pe.Remaining)
		}
	}
}

func TestFiguresReproduce(t *testing.T) {
	for _, id := range Figures() {
		id := id
		t.Run(id, func(t *testing.T) {
			f, err := Figure(id, Config{})
			if err != nil {
				t.Fatal(err)
			}
			if !FigureOK(f) {
				t.Errorf("figure reproduction failed: %s", f)
			}
			if f.Found && f.HintReport == "" {
				t.Errorf("no hint report rendered")
			}
		})
	}
}

func TestFigureHintReportFormat(t *testing.T) {
	// Figure 5: the Libsafe hint must be a control-dependent vulnerability
	// whose site is the strcpy line.
	f, err := Figure("fig1", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f.HintReport, "Ctrl Dependent Vulnerability") {
		t.Errorf("hint report missing ctrl-dep header:\n%s", f.HintReport)
	}
	if !strings.Contains(f.HintReport, "Vulnerable Site Location:") {
		t.Errorf("hint report missing site location:\n%s", f.HintReport)
	}
	if !strings.Contains(f.HintReport, "br ") {
		t.Errorf("hint report missing branch hint:\n%s", f.HintReport)
	}
}

func TestUnknownFigure(t *testing.T) {
	if _, err := Figure("fig99", Config{}); err == nil {
		t.Error("want error for unknown figure")
	}
}

func TestTablesShape(t *testing.T) {
	tb, err := BuildTables(Config{Noise: workloads.NoiseLight, DetectRuns: 6})
	if err != nil {
		t.Fatal(err)
	}
	t1 := tb.Table1()
	if len(t1) < 7 { // header + 6 programs (memcached excluded) + total
		t.Errorf("table 1 rows = %d", len(t1))
	}
	t2 := tb.Table2()
	if len(t2) < 7 {
		t.Errorf("table 2 rows = %d", len(t2))
	}
	t3 := tb.Table3()
	if len(t3) != 9 { // header + 7 programs + total
		t.Errorf("table 3 rows = %d, want 9", len(t3))
	}
	t4 := tb.Table4()
	if len(t4) != 11 { // header + 10 attacks
		t.Errorf("table 4 rows = %d, want 11", len(t4))
	}
	found, modelled := tb.AttacksFoundTotal()
	if found != modelled {
		t.Errorf("attacks found %d != modelled %d", found, modelled)
	}
	if r := tb.ReductionRatio(); r <= 0 || r >= 1 {
		t.Errorf("reduction ratio = %v", r)
	}
	if tb.Study == nil || len(tb.Study.Rows) != 10 {
		t.Errorf("study rows missing")
	}
}

func TestParallelTablesMatchSequential(t *testing.T) {
	cfg := Config{Noise: workloads.NoiseLight, DetectRuns: 6}
	seq, err := BuildTables(cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := BuildTablesParallel(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Programs) != len(seq.Programs) {
		t.Fatalf("programs %d != %d", len(par.Programs), len(seq.Programs))
	}
	for i := range seq.Programs {
		s, p := seq.Programs[i], par.Programs[i]
		if s.W.Name != p.W.Name {
			t.Fatalf("order differs: %s vs %s", s.W.Name, p.W.Name)
		}
		if s.RawReports != p.RawReports || s.Remaining != p.Remaining ||
			len(s.AttacksFound) != len(p.AttacksFound) {
			t.Errorf("%s: parallel results differ: raw %d/%d remain %d/%d attacks %d/%d",
				s.W.Name, s.RawReports, p.RawReports, s.Remaining, p.Remaining,
				len(s.AttacksFound), len(p.AttacksFound))
		}
	}
	fs, _ := seq.AttacksFoundTotal()
	fp, _ := par.AttacksFoundTotal()
	if fs != fp {
		t.Errorf("attacks found differ: %d vs %d", fs, fp)
	}
}

func TestExtraFigureCaseStudies(t *testing.T) {
	// Beyond the paper's numbered figures, the MySQL #24988 and Chrome
	// console.profile case studies (§8.3) reproduce through the same path.
	for _, id := range []string{"extra-mysql", "extra-chrome"} {
		id := id
		t.Run(id, func(t *testing.T) {
			f, err := Figure(id, Config{})
			if err != nil {
				t.Fatal(err)
			}
			if !FigureOK(f) {
				t.Errorf("case study failed: %s", f)
			}
		})
	}
}
