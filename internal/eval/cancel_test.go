package eval

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/conanalysis/owl/internal/workloads"
)

// TestParallelCancelsInFlightWorkloads checks the failure of one
// workload releases the slots of workloads that are already running,
// not just the ones still queued: the siblings here hold their slot
// until the pool's context is canceled, so the build can only finish
// promptly if the cancellation actually reaches them.
func TestParallelCancelsInFlightWorkloads(t *testing.T) {
	names := workloads.Names()
	evalWorkloadFn = func(w *workloads.Workload, cfg Config) (*ProgramEval, error) {
		if w.Name == names[0] {
			return nil, fmt.Errorf("injected failure")
		}
		select {
		case <-cfg.Ctx.Done():
			return nil, cfg.Ctx.Err()
		case <-time.After(30 * time.Second):
			return nil, fmt.Errorf("worker slot never released")
		}
	}
	defer func() { evalWorkloadFn = EvalWorkload }()

	start := time.Now()
	_, err := BuildTablesParallel(Config{Noise: workloads.NoiseLight}, len(names))
	if err == nil {
		t.Fatal("want injected error")
	}
	if !strings.Contains(err.Error(), names[0]) || !strings.Contains(err.Error(), "eval:") {
		t.Errorf("error %q should name the failed workload %q and its stage", err, names[0])
	}
	if time.Since(start) > 20*time.Second {
		t.Fatal("in-flight workloads were not canceled; pool waited for the 30s stall")
	}
}

// TestParallelQuarantinesPanickingWorkload checks a panicking evaluation
// is contained by the supervisor and reported with the workload name and
// the recovered reason, instead of killing the process or surfacing as a
// bare cancellation.
func TestParallelQuarantinesPanickingWorkload(t *testing.T) {
	names := workloads.Names()
	evalWorkloadFn = func(w *workloads.Workload, cfg Config) (*ProgramEval, error) {
		if w.Name == names[0] {
			panic("corrupt workload model")
		}
		select {
		case <-cfg.Ctx.Done():
			return nil, cfg.Ctx.Err()
		case <-time.After(30 * time.Second):
			return nil, fmt.Errorf("worker slot never released")
		}
	}
	defer func() { evalWorkloadFn = EvalWorkload }()

	_, err := BuildTablesParallel(Config{Noise: workloads.NoiseLight}, len(names))
	if err == nil {
		t.Fatal("want quarantine error")
	}
	if !strings.Contains(err.Error(), names[0]) || !strings.Contains(err.Error(), "corrupt workload model") {
		t.Errorf("error %q should name workload %q and the recovered panic", err, names[0])
	}
}
