package eval

import (
	"fmt"
	"strings"

	"github.com/conanalysis/owl/internal/attack"
	"github.com/conanalysis/owl/internal/report"
	"github.com/conanalysis/owl/internal/workloads"
)

// FigureResult is the outcome of reproducing one of the paper's figure
// case studies end-to-end: the figure's race must be detected, Algorithm 1
// must flag the figure's vulnerable site, the dynamic stages must confirm
// it where applicable, and the exploit driver must realize the consequence.
type FigureResult struct {
	Figure     string
	Workload   string
	AttackID   string
	Detected   bool // the underlying race is in the detector output
	Found      bool // Algorithm 1 flagged the site
	Confirmed  bool // dynamic vulnerability verifier reached the site
	Exploited  bool // the exploit driver realized the consequence
	Reps       int  // repetitions the exploit needed
	HintReport string
}

func (f *FigureResult) String() string {
	return fmt.Sprintf("%s (%s/%s): detected=%v found=%v confirmed=%v exploited=%v reps=%d",
		f.Figure, f.Workload, f.AttackID, f.Detected, f.Found, f.Confirmed, f.Exploited, f.Reps)
}

// figureSpecs maps the paper's figures to workload attack specs. Figures
// 3-5 are the architecture diagram, the Libsafe call stack, and the hint
// report format; 4 and 5 are exercised through the Figure-1 run.
var figureSpecs = map[string]struct {
	workload string
	attackID string
}{
	"fig1":         {"libsafe", "Libsafe-dying"},     // Libsafe dying race
	"fig2":         {"linux", "Linux-2.6.10-uselib"}, // uselib f_op NULL deref
	"fig6":         {"ssdb", "CVE-2016-1000324"},     // SSDB binlog UAF
	"fig7":         {"apache", "Apache-25520"},       // buffered-log HTML integrity
	"fig8":         {"apache", "Apache-46215"},       // busy-counter DoS
	"extra-mysql":  {"mysql", "MySQL-24988"},         // §8.3 known attack
	"extra-chrome": {"chrome", "Chrome-consoleprofile"},
}

// Figures lists the reproducible figure ids.
func Figures() []string {
	return []string{"fig1", "fig2", "fig6", "fig7", "fig8"}
}

// Figure reproduces one figure end-to-end.
func Figure(id string, cfg Config) (*FigureResult, error) {
	spec, ok := figureSpecs[id]
	if !ok {
		return nil, fmt.Errorf("eval: unknown figure %q", id)
	}
	cfg = cfg.withDefaults()
	w := workloads.Get(spec.workload, cfg.Noise)
	if w == nil {
		return nil, fmt.Errorf("eval: unknown workload %q", spec.workload)
	}
	var atk *workloads.AttackSpec
	for i := range w.Attacks {
		if w.Attacks[i].ID == spec.attackID {
			atk = &w.Attacks[i]
		}
	}
	if atk == nil {
		return nil, fmt.Errorf("eval: workload %s has no attack %s", spec.workload, spec.attackID)
	}

	out := &FigureResult{Figure: id, Workload: spec.workload, AttackID: spec.attackID}

	pe, err := EvalWorkload(w, cfg)
	if err != nil {
		return nil, err
	}
	out.Detected = pe.RawReports > 0
	for _, m := range pe.AttacksFound {
		if m.Spec.ID != atk.ID {
			continue
		}
		out.Found = true
		out.Confirmed = m.Confirmed
		out.HintReport = report.Finding(m.Finding)
	}

	d := attack.NewDriver(w)
	ex, err := d.Exploit(*atk)
	if err != nil {
		return nil, err
	}
	out.Exploited = ex.Succeeded
	out.Reps = ex.Runs
	return out, nil
}

// FigureOK reports whether the figure reproduction holds the paper's
// claims: race detected, site found, and the attack exploitable. Kernel
// figures do not require dynamic confirmation (the paper leaves kernel
// verifiers to future work).
func FigureOK(f *FigureResult) bool {
	if !f.Detected || !f.Found || !f.Exploited {
		return false
	}
	if strings.HasPrefix(f.Workload, "linux") {
		return true
	}
	return f.Confirmed
}
