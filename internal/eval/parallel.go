package eval

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/conanalysis/owl/internal/attack"
	"github.com/conanalysis/owl/internal/study"
	"github.com/conanalysis/owl/internal/workloads"
)

// evalWorkloadFn is the per-workload evaluation BuildTablesParallel's
// workers run; tests swap it to inject failures into the pool.
var evalWorkloadFn = EvalWorkload

// BuildTablesParallel is BuildTables with the per-workload evaluations and
// exploit campaigns fanned out over a bounded worker pool, and the §3
// study (which is independent of the table evaluations) overlapped with
// the pool instead of serialized after it. Everything a worker touches is
// freshly constructed (each workload gets its own module and machines), so
// the workers share nothing; results are collected in registry order to
// keep output deterministic. On failure the pool drains — workers skip
// jobs that have not started yet — and the error returned is the failed
// workload earliest in registry order, so multi-failure runs report
// deterministically regardless of worker scheduling.
func BuildTablesParallel(cfg Config, workers int) (*Tables, error) {
	cfg = cfg.withDefaults()
	// Clock the whole build (workload construction included) so Elapsed is
	// comparable with BuildTables' Table-3 analysis-cost accounting.
	start := time.Now()
	defer cfg.Metrics.Stage("eval.total")()
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	names := workloads.Names()
	if workers > len(names) {
		workers = len(names)
	}
	cfg.Metrics.Gauge("eval.workers", float64(workers))

	type slot struct {
		pe  *ProgramEval
		ex  []*attack.Result
		err error
	}
	slots := make([]slot, len(names))
	evalOne := evalWorkloadFn
	if evalOne == nil {
		evalOne = EvalWorkload
	}
	jobs := make(chan int)
	done := make(chan struct{})
	var failOnce sync.Once
	fail := func() { failOnce.Do(func() { close(done) }) }

	stopPool := cfg.Metrics.Stage("eval.workloads")
	cfg.Metrics.SetWorkers("eval.workloads", workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				select {
				case <-done:
					// A sibling failed: drain the queue without starting
					// more work.
					continue
				default:
				}
				busy := time.Now()
				// Each worker builds its own workload instance: modules
				// and machines are not safe for concurrent use, and this
				// way they never need to be.
				wl := workloads.Get(names[i], cfg.Noise)
				pe, err := evalOne(wl, cfg)
				if err != nil {
					slots[i] = slot{err: fmt.Errorf("eval %s: %w", names[i], err)}
					fail()
					continue
				}
				ex, err := ExploitCampaign(wl, 100)
				if err != nil {
					slots[i] = slot{err: fmt.Errorf("exploit %s: %w", names[i], err)}
					fail()
					continue
				}
				slots[i] = slot{pe: pe, ex: ex}
				cfg.Metrics.AddBusy("eval.workloads", time.Since(busy))
			}
		}()
	}

	// The study reads nothing the workload evaluations produce, so it runs
	// concurrently with the pool rather than after it.
	type studyOut struct {
		st  *study.Result
		err error
	}
	studyCh := make(chan studyOut, 1)
	go func() {
		st, err := study.Run(study.Config{
			Noise: cfg.Noise, DetectRuns: cfg.DetectRuns, Metrics: cfg.Metrics,
		})
		studyCh <- studyOut{st: st, err: err}
	}()

	for i := range names {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	stopPool()
	sr := <-studyCh

	// Report the earliest failed workload in registry order.
	for _, s := range slots {
		if s.err != nil {
			return nil, s.err
		}
	}
	t := &Tables{Cfg: cfg, Exploits: make(map[string][]*attack.Result)}
	for i, s := range slots {
		t.Programs = append(t.Programs, s.pe)
		t.Exploits[names[i]] = s.ex
	}
	if sr.err != nil {
		return nil, sr.err
	}
	t.Study = sr.st
	t.Elapsed = time.Since(start)
	return t, nil
}
