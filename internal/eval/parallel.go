package eval

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/conanalysis/owl/internal/attack"
	"github.com/conanalysis/owl/internal/study"
	"github.com/conanalysis/owl/internal/workloads"
)

// BuildTablesParallel is BuildTables with the per-workload evaluations and
// exploit campaigns fanned out over a bounded worker pool. Everything a
// worker touches is freshly constructed (each workload gets its own module
// and machines), so the workers share nothing; results are collected in
// registry order to keep output deterministic.
func BuildTablesParallel(cfg Config, workers int) (*Tables, error) {
	cfg = cfg.withDefaults()
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	names := workloads.Names()
	if workers > len(names) {
		workers = len(names)
	}

	type slot struct {
		pe  *ProgramEval
		ex  []*attack.Result
		err error
	}
	slots := make([]slot, len(names))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				// Each worker builds its own workload instance: modules
				// and machines are not safe for concurrent use, and this
				// way they never need to be.
				wl := workloads.Get(names[i], cfg.Noise)
				pe, err := EvalWorkload(wl, cfg)
				if err != nil {
					slots[i] = slot{err: fmt.Errorf("eval %s: %w", names[i], err)}
					continue
				}
				ex, err := ExploitCampaign(wl, 100)
				if err != nil {
					slots[i] = slot{err: fmt.Errorf("exploit %s: %w", names[i], err)}
					continue
				}
				slots[i] = slot{pe: pe, ex: ex}
			}
		}()
	}
	t := &Tables{Cfg: cfg, Exploits: make(map[string][]*attack.Result)}
	start := time.Now()
	for i := range names {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for i, s := range slots {
		if s.err != nil {
			return nil, s.err
		}
		t.Programs = append(t.Programs, s.pe)
		t.Exploits[names[i]] = s.ex
	}
	st, err := study.Run(study.Config{Noise: cfg.Noise, DetectRuns: cfg.DetectRuns})
	if err != nil {
		return nil, err
	}
	t.Study = st
	t.Elapsed = time.Since(start)
	return t, nil
}
