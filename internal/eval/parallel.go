package eval

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"github.com/conanalysis/owl/internal/attack"
	"github.com/conanalysis/owl/internal/study"
	"github.com/conanalysis/owl/internal/supervise"
	"github.com/conanalysis/owl/internal/workloads"
)

// evalWorkloadFn is the per-workload evaluation BuildTablesParallel's
// workers run; tests swap it to inject failures into the pool.
var evalWorkloadFn = EvalWorkload

// BuildTablesParallel is BuildTables with the per-workload evaluations and
// exploit campaigns fanned out over a bounded worker pool, and the §3
// study (which is independent of the table evaluations) overlapped with
// the pool instead of serialized after it. Everything a worker touches is
// freshly constructed (each workload gets its own module and machines), so
// the workers share nothing; results are collected in registry order to
// keep output deterministic.
//
// The pool runs under a supervisor (internal/supervise): a panicking
// workload evaluation is contained, and the first failure cancels the
// pool's context so in-flight workloads stop at their next run boundary
// and release their worker slots promptly — not just the jobs that had
// yet to start. The error returned is the failed workload earliest in
// registry order (naming the workload and the stage that failed inside
// it), so multi-failure runs report deterministically regardless of
// worker scheduling.
func BuildTablesParallel(cfg Config, workers int) (*Tables, error) {
	cfg = cfg.withDefaults()
	// Clock the whole build (workload construction included) so Elapsed is
	// comparable with BuildTables' Table-3 analysis-cost accounting.
	start := time.Now()
	defer cfg.Metrics.Stage("eval.total")()
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	names := workloads.Names()
	if workers > len(names) {
		workers = len(names)
	}
	cfg.Metrics.Gauge("eval.workers", float64(workers))

	type slot struct {
		pe  *ProgramEval
		ex  []*attack.Result
		err error
	}
	slots := make([]slot, len(names))
	evalOne := evalWorkloadFn
	if evalOne == nil {
		evalOne = EvalWorkload
	}

	// CancelOnFault makes the first failed workload cancel the pool's
	// context; the other workloads observe it between interpreter runs
	// (the owl pipeline is cancelable) and exit instead of finishing.
	sup := supervise.New(supervise.Config{
		Ctx:           cfg.Ctx,
		Faults:        cfg.Faults,
		Metrics:       cfg.Metrics,
		MetricsPrefix: "eval",
		CancelOnFault: true,
	})

	// The study reads nothing the workload evaluations produce, so it runs
	// concurrently with the pool rather than after it.
	type studyOut struct {
		st  *study.Result
		err error
	}
	studyCh := make(chan studyOut, 1)
	go func() {
		st, err := study.Run(study.Config{
			Noise: cfg.Noise, DetectRuns: cfg.DetectRuns, Metrics: cfg.Metrics,
		})
		studyCh <- studyOut{st: st, err: err}
	}()

	st := sup.Stage("eval.workloads")
	st.ForEach(0, len(names), workers, func(ctx context.Context, i int) error {
		if err := st.Inject(i); err != nil {
			return err
		}
		// Each worker builds its own workload instance: modules and
		// machines are not safe for concurrent use, and this way they
		// never need to be. The stage context rides down into the owl
		// pipeline so a sibling's failure stops this workload too.
		wcfg := cfg
		wcfg.Ctx = ctx
		wl := workloads.Get(names[i], cfg.Noise)
		pe, err := evalOne(wl, wcfg)
		if err != nil {
			err = fmt.Errorf("workload %s: eval: %w", names[i], err)
			slots[i] = slot{err: err}
			return err
		}
		ex, err := ExploitCampaign(wl, 100)
		if err != nil {
			err = fmt.Errorf("workload %s: exploit campaign: %w", names[i], err)
			slots[i] = slot{err: err}
			return err
		}
		slots[i] = slot{pe: pe, ex: ex}
		return nil
	})
	st.Close()
	sr := <-studyCh

	// Report the earliest failed workload in registry order, skipping the
	// workloads that merely observed the pool's cancellation (their error
	// is the fallback when the caller's own context ended the build).
	var cancelErr error
	for _, s := range slots {
		if s.err == nil {
			continue
		}
		if errors.Is(s.err, context.Canceled) || errors.Is(s.err, context.DeadlineExceeded) {
			if cancelErr == nil {
				cancelErr = s.err
			}
			continue
		}
		return nil, s.err
	}
	// A panicking evaluation never writes its slot; its quarantine record
	// (earliest run index first) carries the recovered reason.
	if fq := st.FirstQuarantine(); fq != nil {
		return nil, fmt.Errorf("workload %s: %s", names[fq.Run], fq.Reason)
	}
	if sup.Err() != nil {
		if cancelErr != nil {
			return nil, cancelErr
		}
		return nil, fmt.Errorf("eval: build canceled: %w", sup.Err())
	}
	t := &Tables{Cfg: cfg, Exploits: make(map[string][]*attack.Result)}
	for i, s := range slots {
		t.Programs = append(t.Programs, s.pe)
		t.Exploits[names[i]] = s.ex
	}
	if sr.err != nil {
		return nil, sr.err
	}
	t.Study = sr.st
	t.Elapsed = time.Since(start)
	return t, nil
}
