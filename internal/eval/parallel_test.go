package eval

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/conanalysis/owl/internal/metrics"
	"github.com/conanalysis/owl/internal/workloads"
)

// TestParallelFailsFastInRegistryOrder injects a failure into every
// workload evaluation and checks two things: the pool drains instead of
// evaluating the whole registry, and the error reported is the failed
// workload earliest in registry order (not whichever worker lost the
// race), so multi-failure runs are deterministic.
func TestParallelFailsFastInRegistryOrder(t *testing.T) {
	var evaluated atomic.Int32
	evalWorkloadFn = func(w *workloads.Workload, cfg Config) (*ProgramEval, error) {
		evaluated.Add(1)
		return nil, fmt.Errorf("injected failure")
	}
	defer func() { evalWorkloadFn = EvalWorkload }()

	_, err := BuildTablesParallel(Config{Noise: workloads.NoiseLight}, 2)
	if err == nil {
		t.Fatal("want injected error")
	}
	first := workloads.Names()[0]
	if !strings.Contains(err.Error(), first) {
		t.Errorf("error %q should name the registry-first workload %q", err, first)
	}
	if n := int(evaluated.Load()); n >= len(workloads.Names()) {
		t.Errorf("evaluated %d workloads after first failure; pool did not drain", n)
	}
}

// TestParallelTablesMetrics checks the collector threads through the
// parallel build: pool stages from eval, pipeline stages from owl, and
// study stages from the overlapped study run all land in one snapshot.
func TestParallelTablesMetrics(t *testing.T) {
	mc := metrics.New()
	cfg := Config{Noise: workloads.NoiseLight, DetectRuns: 4, Metrics: mc}
	tb, err := BuildTablesParallel(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Study == nil {
		t.Fatal("overlapped study run produced no result")
	}
	if tb.Elapsed <= 0 {
		t.Error("Elapsed not recorded")
	}
	rep := mc.Snapshot()
	got := map[string]bool{}
	for _, s := range rep.Stages {
		got[s.Name] = true
	}
	for _, want := range []string{"eval.total", "eval.workloads", "owl.detect", "study.total"} {
		if !got[want] {
			t.Errorf("stage %q missing from snapshot (have %v)", want, rep.Stages)
		}
	}
}
