package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// maxBodyBytes bounds submission bodies (inline .oir programs are small;
// 1 MiB is orders of magnitude above any workload).
const maxBodyBytes = 1 << 20

// Handler returns the service's HTTP API:
//
//	POST /v1/jobs             submit a Spec  → 202 JobStatus | 429 | 503
//	GET  /v1/jobs             list job statuses in submission order
//	GET  /v1/jobs/{id}        one job's status (result once done)
//	GET  /v1/jobs/{id}/stream SSE status stream until the job finishes
//	GET  /v1/programs         the store: accumulated per-program state
//	GET  /v1/programs/{key}/state  program state blob for fleet peers
//	PUT  /v1/programs/{key}/state  anti-entropy state offer from a peer
//	GET  /metrics             live metrics snapshot (pipeline + serve.*)
//	GET  /healthz             "ok" (503 once draining)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/programs", s.handlePrograms)
	mux.HandleFunc("GET /v1/programs/{key}/state", s.handleStateGet)
	mux.HandleFunc("PUT /v1/programs/{key}/state", s.handleStateOffer)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "decode spec: " + err.Error()})
		return
	}
	j, err := s.Submit(spec)
	if err != nil {
		if rej, ok := err.(*ErrRejected); ok {
			if rej.Drain {
				writeJSON(w, http.StatusServiceUnavailable, apiError{Error: rej.Reason})
				return
			}
			// Backpressure: the client should retry once the queue or
			// quota drains — tell it when.
			w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Seconds()+0.5)))
			writeJSON(w, http.StatusTooManyRequests, apiError{Error: rej.Reason})
			return
		}
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.Status().ID)
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// handleStream is the SSE progress stream: one `status` event per state
// change, then a final `done` event carrying the terminal status, then
// the stream closes. A reconnecting client just re-GETs /v1/jobs/{id}.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, apiError{Error: "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	ch, cancel := j.subscribe()
	defer cancel()
	send := func(event string, st JobStatus) {
		data, _ := json.Marshal(st)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		fl.Flush()
	}
	st := j.Status()
	if st.State == StateDone || st.State == StateFailed {
		send("done", st)
		return
	}
	send("status", st)
	for {
		select {
		case <-r.Context().Done():
			return
		case st := <-ch:
			if st.State == StateDone || st.State == StateFailed {
				send("done", st)
				return
			}
			send("status", st)
		case <-j.done:
			send("done", j.Status())
			return
		}
	}
}

func (s *Server) handlePrograms(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Programs())
}

// handleMetrics scrapes the live collector — pipeline stages and
// counters merged from finished jobs plus the serve.* series — while
// jobs may still be recording (the contract TestCollectorConcurrentScrape
// pins).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.queueGauges()
	w.Header().Set("Content-Type", "application/json")
	s.mc.WriteJSON(w)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}
