package serve

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/conanalysis/owl/internal/faultinject"
)

func mustSubmit(t *testing.T, s *Server, spec Spec) *Job {
	t.Helper()
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	return j
}

// inlineSpec is a small racy inline program — cheap to analyze, and it
// produces raw reports so the report-set round trip is exercised too.
func inlineSpec() Spec {
	const src = `
global @x = 0

func @worker() {
entry:
  store 1, @x
  ret 0
}
func @main() {
entry:
  %t = call @spawn(@worker)
  %v = load @x
  %r = call @join(%t)
  ret 0
}
`
	return Spec{Program: src, Options: SpecOptions{Explore: "coverage", Budget: 24, Seed: 3}}
}

// TestRestartResumeParity is the acceptance gate for the durable store:
// submit → drain → reboot from disk → resubmit must behave exactly like
// a never-restarted server's repeat submission — strictly fewer
// schedules than the first run at equal budget, a byte-identical
// summary, and the same accumulated program accounting.
func TestRestartResumeParity(t *testing.T) {
	spec := libsafeSpec("parity")

	// Baseline: one server, never restarted.
	base := mustNew(t, Config{Shards: 2, SnapEntries: 64})
	b1 := waitJob(t, mustSubmit(t, base, spec)).Result
	b2 := waitJob(t, mustSubmit(t, base, spec)).Result
	baseProgs := base.Programs()
	base.Shutdown(context.Background())

	// Durable: same first submission, then a full drain and a reboot
	// from the state directory.
	dir := t.TempDir()
	s1 := mustNew(t, Config{Shards: 2, SnapEntries: 64, StateDir: dir})
	d1 := waitJob(t, mustSubmit(t, s1, spec)).Result
	if normalizeTiming(d1.SummaryText) != normalizeTiming(b1.SummaryText) {
		t.Fatal("first-run summaries diverged before any restart — persistence changed pipeline behavior")
	}
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	s2 := mustNew(t, Config{Shards: 2, SnapEntries: 64, StateDir: dir})
	defer s2.Shutdown(context.Background())
	if got := counterOf(s2.mc, "serve.persist_recovered"); got != 1 {
		t.Fatalf("serve.persist_recovered = %d, want 1", got)
	}
	st := waitJob(t, mustSubmit(t, s2, spec))
	if !st.Resume {
		t.Error("post-restart resubmission did not resume")
	}
	if counterOf(s2.mc, "serve.resume_hits") != 1 {
		t.Error("post-restart resubmission not counted as resume hit")
	}
	d2 := st.Result
	if d2.ExecutedSchedules >= d1.ExecutedSchedules {
		t.Errorf("post-restart resume executed %d schedules, want strictly fewer than first run's %d",
			d2.ExecutedSchedules, d1.ExecutedSchedules)
	}
	if d2.ExecutedSchedules != b2.ExecutedSchedules {
		t.Errorf("restart parity broken: %d schedules after reboot, never-restarted baseline executed %d",
			d2.ExecutedSchedules, b2.ExecutedSchedules)
	}
	if normalizeTiming(d2.SummaryText) != normalizeTiming(b2.SummaryText) {
		t.Errorf("post-restart summary diverged from baseline:\n--- restarted ---\n%s\n--- baseline ---\n%s",
			d2.SummaryText, b2.SummaryText)
	}
	if d2.Submissions != 2 || d2.NewReports != 0 || d2.StoreReports != b2.StoreReports {
		t.Errorf("post-restart accounting = %+v, baseline = %+v", d2, b2)
	}
	if progs := s2.Programs(); !reflect.DeepEqual(progs, baseProgs) {
		t.Errorf("program listings diverged:\n restarted %+v\n baseline  %+v", progs, baseProgs)
	}
}

// TestKillWithoutDrainRecovers: the first server is abandoned without
// Shutdown — no drain-time checkpoint — so the reboot must reconstruct
// the state purely from the initial checkpoint plus WAL replay.
func TestKillWithoutDrainRecovers(t *testing.T) {
	dir := t.TempDir()
	spec := inlineSpec()
	s1 := mustNew(t, Config{Shards: 1, StateDir: dir})
	first := waitJob(t, mustSubmit(t, s1, spec)).Result
	if first.RawReports == 0 {
		t.Fatal("inline program produced no reports; the round trip tests nothing")
	}
	// Simulated kill -9: s1 is abandoned, its shard goroutines parked.

	s2 := mustNew(t, Config{Shards: 1, StateDir: dir})
	defer s2.Shutdown(context.Background())
	if got := counterOf(s2.mc, "serve.persist_replayed"); got != 1 {
		t.Errorf("serve.persist_replayed = %d, want 1 WAL record", got)
	}
	st := waitJob(t, mustSubmit(t, s2, spec))
	if !st.Resume {
		t.Error("resubmission after kill did not resume from the WAL")
	}
	if st.Result.Submissions != 2 || st.Result.NewReports != 0 || st.Result.StoreReports != first.StoreReports {
		t.Errorf("post-kill accounting = %+v (first %+v)", st.Result, first)
	}
}

// TestDiskFaultMatrix proves the recovery invariant under every
// injected fault kind: whatever the plan did to the writing server's
// disk, the next boot either recovers the durable prefix or quarantines
// — it never fails, and a resubmission always completes.
func TestDiskFaultMatrix(t *testing.T) {
	cases := []struct {
		name  string
		rules []faultinject.Rule
		// wantResume: does the resubmission on the rebooted server resume?
		wantResume bool
		// counter the rebooted server must have raised (beyond recovered).
		wantCounter string
	}{
		{
			// The WAL record for job 1 tears (kill -9 mid page flush):
			// recovery truncates it and the state falls back to the cold
			// initial checkpoint.
			name:        "torn-wal-record",
			rules:       []faultinject.Rule{{Stage: "persist.wal.append", Run: 0, Kind: faultinject.KindTornWrite}},
			wantResume:  false,
			wantCounter: "serve.persist_truncated_tails",
		},
		{
			// Every checkpoint write is bit-flipped, so even the initial
			// checkpoint is corrupt: boot must quarantine the program.
			name:        "bitflip-checkpoint",
			rules:       []faultinject.Rule{{Stage: "persist.checkpoint.write", Run: -1, Kind: faultinject.KindBitFlip, Bit: 200}},
			wantResume:  false,
			wantCounter: "serve.persist_quarantined",
		},
		{
			// The WAL append errors out, but the fallback checkpoint
			// regains durability: the reboot resumes warm.
			name:       "short-wal-append",
			rules:      []faultinject.Rule{{Stage: "persist.wal.append", Run: 0, Kind: faultinject.KindShortWrite}},
			wantResume: true,
		},
		{
			// Same via the fsync path.
			name:       "wal-fsync-error",
			rules:      []faultinject.Rule{{Stage: "persist.wal.fsync", Run: 0, Kind: faultinject.KindFsyncError}},
			wantResume: true,
		},
		{
			// Both paths fail persistently: the server keeps serving from
			// memory, nothing usable lands on disk, and the reboot starts
			// cold — but starts.
			name: "everything-fails",
			rules: []faultinject.Rule{
				{Stage: "persist.wal.append", Run: -1, Kind: faultinject.KindShortWrite},
				{Stage: "persist.checkpoint.write", Run: -1, Kind: faultinject.KindShortWrite},
			},
			wantResume: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			spec := inlineSpec()
			s1 := mustNew(t, Config{Shards: 1, StateDir: dir, Faults: &faultinject.Plan{Rules: tc.rules}})
			st1 := waitJob(t, mustSubmit(t, s1, spec))
			if st1.State != StateDone {
				t.Fatalf("job under disk faults ended %q — faults must never fail analysis", st1.State)
			}
			// Abandoned without drain, like a crash.

			s2 := mustNew(t, Config{Shards: 1, StateDir: dir})
			defer s2.Shutdown(context.Background())
			st2 := waitJob(t, mustSubmit(t, s2, spec))
			if st2.Resume != tc.wantResume {
				t.Errorf("post-fault resubmission resume = %v, want %v", st2.Resume, tc.wantResume)
			}
			if tc.wantResume && st2.Result.ExecutedSchedules >= st1.Result.ExecutedSchedules {
				t.Errorf("recovered resume executed %d schedules, want fewer than %d",
					st2.Result.ExecutedSchedules, st1.Result.ExecutedSchedules)
			}
			if tc.wantCounter != "" && counterOf(s2.mc, tc.wantCounter) == 0 {
				t.Errorf("counter %s = 0 after recovery, want > 0", tc.wantCounter)
			}
		})
	}
}

// TestEvictionBoundsStore: -max-programs caps the in-memory store by
// LRU-evicting cold programs. Without persistence the evicted state is
// deliberately forgotten (bounded memory), so the resubmission starts
// cold.
func TestEvictionBoundsStore(t *testing.T) {
	s := mustNew(t, Config{Shards: 1, MaxPrograms: 1})
	defer s.Shutdown(context.Background())
	waitJob(t, mustSubmit(t, s, inlineSpec()))
	waitJob(t, mustSubmit(t, s, libsafeSpec("evict"))) // second program evicts the first
	if got := counterOf(s.mc, "serve.programs_evicted"); got != 1 {
		t.Fatalf("serve.programs_evicted = %d, want 1", got)
	}
	if got := s.store.len(); got != 1 {
		t.Fatalf("store holds %d programs, want 1", got)
	}
	st := waitJob(t, mustSubmit(t, s, inlineSpec()))
	if st.Resume {
		t.Error("evicted program resumed without persistence — state should have been dropped")
	}
}

// TestEvictionRehydratesFromDisk: with a state dir, eviction only drops
// the program from memory; the next submission lazily rehydrates it
// from disk and resumes warm.
func TestEvictionRehydratesFromDisk(t *testing.T) {
	s := mustNew(t, Config{Shards: 1, MaxPrograms: 1, StateDir: t.TempDir()})
	defer s.Shutdown(context.Background())
	first := waitJob(t, mustSubmit(t, s, inlineSpec())).Result
	waitJob(t, mustSubmit(t, s, libsafeSpec("evict")))
	if got := counterOf(s.mc, "serve.programs_evicted"); got != 1 {
		t.Fatalf("serve.programs_evicted = %d, want 1", got)
	}
	st := waitJob(t, mustSubmit(t, s, inlineSpec()))
	if !st.Resume {
		t.Error("evicted program did not rehydrate from disk")
	}
	if st.Result.Submissions != 2 || st.Result.StoreReports != first.StoreReports {
		t.Errorf("rehydrated accounting = %+v (first %+v)", st.Result, first)
	}
	if got := counterOf(s.mc, "serve.persist_recovered"); got == 0 {
		t.Error("lazy rehydrate not counted in serve.persist_recovered")
	}
}

// TestEvictionSparesInFlightProgram: a program whose first job is still
// queued must survive a concurrent insert pushing the store over
// -max-programs. acquire pins the program before it becomes visible to
// the eviction sweep, so eviction can never close a log out from under
// a job — the failure mode being a silently dropped durable delta.
func TestEvictionSparesInFlightProgram(t *testing.T) {
	s := mustNew(t, Config{Shards: 1, MaxPrograms: 1, StateDir: t.TempDir()})
	defer s.Shutdown(context.Background())
	release := gateRunJob(s)
	defer release() // a Fatal below must not leave Shutdown waiting on the gate

	j1 := mustSubmit(t, s, inlineSpec())       // fresh program, gated in flight
	j2 := mustSubmit(t, s, libsafeSpec("pin")) // second program pushes the store over budget
	if got := counterOf(s.mc, "serve.programs_evicted"); got != 0 {
		t.Fatalf("serve.programs_evicted = %d with both programs in flight, want 0", got)
	}
	if got := s.store.len(); got != 2 {
		t.Fatalf("store holds %d programs, want 2 (over budget, but both are pinned)", got)
	}
	release()
	if first := waitJob(t, j1).Result; first.RawReports == 0 {
		t.Fatal("gated job produced no reports; the durability assertion below tests nothing")
	}
	waitJob(t, j2)

	// The first job's delta must have reached the WAL (its log was never
	// closed by eviction): the resubmission resumes warm with the
	// accumulated accounting, whether served from memory or from disk.
	st := waitJob(t, mustSubmit(t, s, inlineSpec()))
	if !st.Resume {
		t.Error("resubmission after in-flight window did not resume — first job's state was lost")
	}
	if st.Result.Submissions != 2 {
		t.Errorf("resubmission sees %d submissions, want 2", st.Result.Submissions)
	}
}

// TestDrainWithStreamSubscribers: a drain racing in-flight SSE
// subscribers must deliver every stream its terminal event and still
// complete. (Run under -race in the persist-gate lane.)
func TestDrainWithStreamSubscribers(t *testing.T) {
	s := mustNew(t, Config{Shards: 1, StateDir: t.TempDir()})
	release := gateRunJob(s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	j := mustSubmit(t, s, inlineSpec())
	id := j.Status().ID

	const subscribers = 3
	finals := make(chan JobStatus, subscribers)
	errs := make(chan error, subscribers)
	for i := 0; i < subscribers; i++ {
		go func() {
			resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id + "/stream")
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			events := readSSE(t, resp)
			var final JobStatus
			if err := json.Unmarshal([]byte(events[len(events)-1].data), &final); err != nil {
				errs <- err
				return
			}
			finals <- final
		}()
	}

	drained := make(chan error, 1)
	go func() { drained <- s.Shutdown(context.Background()) }()
	time.Sleep(10 * time.Millisecond) // let the drain begin with the job gated in flight
	release()

	for i := 0; i < subscribers; i++ {
		select {
		case st := <-finals:
			if st.State != StateDone || st.Result == nil {
				t.Errorf("subscriber got terminal state %q, want done with result", st.State)
			}
		case err := <-errs:
			t.Fatalf("subscriber: %v", err)
		case <-time.After(60 * time.Second):
			t.Fatal("subscriber never saw a terminal event during drain")
		}
	}
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("drain never completed")
	}
}

// TestConcurrentCheckpointWhileAbsorbing hammers checkpoints against
// live jobs (the scrape/drain/absorb interleaving, run under -race in
// CI) and then proves the durable state equals the live state by
// rebooting from it.
func TestConcurrentCheckpointWhileAbsorbing(t *testing.T) {
	dir := t.TempDir()
	s := mustNew(t, Config{Shards: 2, StateDir: dir, CheckpointEvery: 2})

	specs := []Spec{inlineSpec(), libsafeSpec("ckpt")}
	var jobs []*Job
	for round := 0; round < 3; round++ {
		for _, spec := range specs {
			jobs = append(jobs, mustSubmit(t, s, spec))
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.persistAll(false)
				s.Programs() // concurrent scrape for good measure
			}
		}
	}()
	for _, j := range jobs {
		waitJob(t, j)
	}
	close(stop)
	wg.Wait()

	live := s.Programs()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	s2 := mustNew(t, Config{Shards: 2, StateDir: dir})
	defer s2.Shutdown(context.Background())
	if got := s2.Programs(); !reflect.DeepEqual(got, live) {
		t.Errorf("rebooted store diverged from live store:\n rebooted %+v\n live     %+v", got, live)
	}
}
