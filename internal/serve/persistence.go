// Durability glue between the serve store and internal/serve/persist.
// The persist package stores checksummed bytes; this file decides what
// those bytes mean: how a programState folds down into a checkpoint,
// how each finished job becomes one WAL delta, and how a recovered blob
// is re-bound against a freshly resolved module at boot.
//
// The cardinal rule is refuse-to-guess: a persisted state rehydrates
// only if the re-resolved program has the same content key AND the same
// module fingerprint, and every stable coverage position resolves. Any
// mismatch discards that program's durable state (quarantined, counted
// in serve.persist_discarded) and the server keeps serving it from
// scratch — a lost resume is a performance bug, silently-wrong coverage
// would be a correctness bug.
package serve

import (
	"fmt"

	"github.com/conanalysis/owl/internal/owl"
	"github.com/conanalysis/owl/internal/sched"
	"github.com/conanalysis/owl/internal/serve/persist"
)

// sourceOf extracts the program-identity fields of a spec — exactly the
// ones resolve() hashes into the store key, nothing else (options are
// not identity).
func sourceOf(spec Spec) persist.ProgramSource {
	return persist.ProgramSource{
		Workload: spec.Workload,
		Recipe:   spec.Recipe,
		Noise:    spec.Noise,
		Program:  spec.Program,
		Inputs:   spec.Inputs,
	}
}

// specFromSource is the boot-time inverse: a checkpoint's preserved
// identity as a resolvable spec.
func specFromSource(src persist.ProgramSource) Spec {
	return Spec{
		Workload: src.Workload,
		Recipe:   src.Recipe,
		Noise:    src.Noise,
		Program:  src.Program,
		Inputs:   src.Inputs,
	}
}

// buildProgramState turns one recovered checkpoint+WAL into a live
// programState bound to prog's module. The caller has already verified
// the content key; this verifies the module fingerprint and replays the
// state under the refuse-to-guess contract.
func buildProgramState(rec *persist.Recovered, name string, prog owl.Program, snapEntries int) (*programState, error) {
	ck := rec.Checkpoint
	fp := prog.Module.Fingerprint()
	if ck.ModuleFP != fp {
		return nil, fmt.Errorf("module fingerprint %.12s does not match persisted %.12s", fp, ck.ModuleFP)
	}
	state := sched.NewExploreState(snapEntries)
	if err := state.Import(prog.Module, ck.State); err != nil {
		return nil, err
	}
	ps := &programState{
		key:         ck.Key,
		name:        name,
		prog:        prog,
		state:       state,
		reports:     make(map[string]bool, len(ck.Reports)),
		submissions: ck.Submissions,
		source:      ck.Source,
		fp:          fp,
		log:         rec.Log,
	}
	for _, id := range ck.Reports {
		if !ps.reports[id] {
			ps.reports[id] = true
			ps.order = append(ps.order, id)
		}
	}
	for _, d := range rec.Deltas {
		if err := state.ApplyDelta(prog.Module, d.State); err != nil {
			return nil, err
		}
		for _, id := range d.Reports {
			if !ps.reports[id] {
				ps.reports[id] = true
				ps.order = append(ps.order, id)
			}
		}
		if d.SubmissionsAfter > ps.submissions {
			ps.submissions = d.SubmissionsAfter
		}
	}
	state.SetJournal(true)
	return ps, nil
}

// rehydrateAll loads every program Open recovered into the store —
// the boot half of crash recovery. Per-program failures discard that
// program (quarantine + serve.persist_discarded) and never fail boot.
func (s *Server) rehydrateAll(recovered []*persist.Recovered) {
	for _, rec := range recovered {
		key := rec.Checkpoint.Key
		prog, name, rkey, err := resolve(specFromSource(rec.Checkpoint.Source))
		if err == nil && rkey != key {
			err = fmt.Errorf("persisted source re-resolves to key %.12s, not %.12s", rkey, key)
		}
		var ps *programState
		if err == nil {
			ps, err = buildProgramState(rec, name, prog, s.cfg.SnapEntries)
		}
		if err != nil {
			rec.Log.Close()
			s.store.discard(key)
			continue
		}
		s.store.insert(ps)
		s.mc.Count("serve.store_programs", 1)
	}
}

// composeCheckpoint snapshots a program's full durable state. The
// caller holds ps.pmu, so no job is between absorb and append and the
// snapshot is one consistent version. For a memory-only program (no
// log) the sequence number falls back to the exploration count — still
// monotonic with the program's progress, which is all the replica
// exchange's staleness check needs.
func composeCheckpoint(ps *programState) persist.Checkpoint {
	ps.mu.Lock()
	reports := append([]string(nil), ps.order...)
	subs := ps.submissions
	ps.mu.Unlock()
	seq := uint64(ps.state.Explorations())
	if ps.log != nil {
		seq = ps.log.LastSeq()
	}
	return persist.Checkpoint{
		Key:         ps.key,
		Name:        ps.name,
		Source:      ps.source,
		ModuleFP:    ps.fp,
		Seq:         seq,
		Submissions: subs,
		Reports:     reports,
		State:       ps.state.Export(),
	}
}

// persistJob makes one finished job durable: drain the state journal,
// append one WAL record, and fold the log into a fresh checkpoint every
// CheckpointEvery records. A failed append falls back to attempting a
// full checkpoint (regaining durability through the other path); if
// both fail the loss is counted and the server keeps serving from
// memory.
func (s *Server) persistJob(ps *programState, freshIDs []string, submissions int) {
	if ps.log == nil {
		return
	}
	ps.pmu.Lock()
	defer ps.pmu.Unlock()
	delta := persist.Delta{
		SubmissionsAfter: submissions,
		Reports:          freshIDs,
		State:            ps.state.TakeDelta(),
	}
	if err := ps.log.Append(delta); err != nil {
		s.mc.Count("serve.persist_errors", 1)
		if cerr := s.checkpointLocked(ps); cerr != nil {
			s.mc.Count("serve.persist_errors", 1)
		}
		return
	}
	if ps.log.Records() >= s.cfg.CheckpointEvery {
		if err := s.checkpointLocked(ps); err != nil {
			s.mc.Count("serve.persist_errors", 1)
		} else {
			// Anti-entropy rides the fold cadence: the state just became
			// one durable version, push that same version to the fleet.
			s.offerState(ps)
		}
	}
}

// checkpointLocked writes a fresh checkpoint for ps. Caller holds
// ps.pmu.
func (s *Server) checkpointLocked(ps *programState) error {
	return ps.log.Checkpoint(composeCheckpoint(ps))
}

// checkpointProgram is the externally-safe form: it serializes against
// the per-job persistence path via pmu.
func (s *Server) checkpointProgram(ps *programState) error {
	if ps.log == nil {
		return nil
	}
	ps.pmu.Lock()
	defer ps.pmu.Unlock()
	return s.checkpointLocked(ps)
}

// persistAll checkpoints every program that has a log — the drain-time
// flush — and closes the logs when shutting down for good.
func (s *Server) persistAll(closeLogs bool) {
	for _, ps := range s.store.all() {
		if ps.log == nil {
			continue
		}
		if err := s.checkpointProgram(ps); err != nil {
			s.mc.Count("serve.persist_errors", 1)
		}
		if closeLogs {
			ps.log.Close()
		}
	}
}

// Fsck validates and repairs a state directory offline; it is the
// library behind cmd/owl-serve -fsck.
func Fsck(stateDir string) (*persist.FsckReport, error) {
	return persist.Fsck(stateDir)
}
