package serve

import (
	"bytes"
	"compress/gzip"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/conanalysis/owl/internal/faultinject"
	"github.com/conanalysis/owl/internal/metrics"
	"github.com/conanalysis/owl/internal/serve/persist"
	"github.com/conanalysis/owl/internal/serve/replicate"
)

// handlerTransport routes peer HTTP requests to in-process handlers by
// host name — a fleet of servers in one test process, no sockets.
type handlerTransport struct {
	mu    sync.Mutex
	hosts map[string]http.Handler
}

func newHandlerTransport() *handlerTransport {
	return &handlerTransport{hosts: make(map[string]http.Handler)}
}

func (ht *handlerTransport) register(host string, h http.Handler) {
	ht.mu.Lock()
	defer ht.mu.Unlock()
	ht.hosts[host] = h
}

func (ht *handlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	ht.mu.Lock()
	h := ht.hosts[req.URL.Host]
	ht.mu.Unlock()
	if h == nil {
		return nil, fmt.Errorf("no route to host %q", req.URL.Host)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Result(), nil
}

// newFleet builds n servers that are mutual peers over an in-process
// transport. mkCfg customizes each replica's config (peer fields are
// overwritten).
func newFleet(t *testing.T, n int, mkCfg func(i int) Config) []*Server {
	t.Helper()
	ht := newHandlerTransport()
	client := &http.Client{Transport: ht}
	urls := make([]string, n)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://replica-%d", i)
	}
	servers := make([]*Server, n)
	for i := 0; i < n; i++ {
		cfg := mkCfg(i)
		if cfg.Metrics == nil {
			cfg.Metrics = metrics.New()
		}
		for j := range urls {
			if j != i {
				cfg.Peers = append(cfg.Peers, urls[j])
			}
		}
		cfg.PeerClient = client
		cfg.PeerBackoff = time.Millisecond
		servers[i] = mustNew(t, cfg)
		ht.register(fmt.Sprintf("replica-%d", i), servers[i].Handler())
	}
	t.Cleanup(func() {
		for _, s := range servers {
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			s.Shutdown(ctx)
			cancel()
		}
	})
	return servers
}

func keyOf(t *testing.T, spec Spec) string {
	t.Helper()
	_, _, key, err := resolve(spec)
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	return key
}

func doReq(h http.Handler, method, path string, hdr map[string]string, body []byte) *httptest.ResponseRecorder {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestStateGetLiveProgram pins the GET side of the exchange: a warm
// program serves a decodable checkpoint blob with a seq ETag,
// If-None-Match returns 304, HEAD returns headers only, gzip is
// negotiated explicitly, and unknown or malformed keys are clean 404s.
func TestStateGetLiveProgram(t *testing.T) {
	mc := metrics.New()
	s := mustNew(t, Config{Metrics: mc})
	defer s.Shutdown(context.Background())
	h := s.Handler()
	spec := libsafeSpec("t")
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	key := keyOf(t, spec)
	path := "/v1/programs/" + key + "/state"

	rec := doReq(h, http.MethodGet, path, nil, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET = %d: %s", rec.Code, rec.Body.String())
	}
	etag := rec.Header().Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on state response")
	}
	ck, err := persist.DecodeCheckpoint(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("served blob does not decode: %v", err)
	}
	if ck.Key != key || ck.State.Explorations == 0 {
		t.Fatalf("served checkpoint = key %.12s, %d explorations", ck.Key, ck.State.Explorations)
	}

	if rec := doReq(h, http.MethodGet, path, map[string]string{"If-None-Match": etag}, nil); rec.Code != http.StatusNotModified {
		t.Fatalf("If-None-Match = %d, want 304", rec.Code)
	}
	rec = doReq(h, http.MethodHead, path, nil, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("HEAD = %d", rec.Code)
	}
	if rec.Body.Len() != 0 {
		t.Fatalf("HEAD wrote %d body bytes", rec.Body.Len())
	}
	if rec.Header().Get("X-Owl-State-Seq") == "" {
		t.Fatal("HEAD lost the seq header")
	}

	rec = doReq(h, http.MethodGet, path, map[string]string{"Accept-Encoding": "gzip"}, nil)
	if rec.Code != http.StatusOK || rec.Header().Get("Content-Encoding") != "gzip" {
		t.Fatalf("gzip GET = %d, encoding %q", rec.Code, rec.Header().Get("Content-Encoding"))
	}
	gz, err := gzip.NewReader(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := io.ReadAll(gz)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := persist.DecodeCheckpoint(plain); err != nil {
		t.Fatalf("gunzipped blob does not decode: %v", err)
	}

	unknown := strings.Repeat("ee", 32)
	if rec := doReq(h, http.MethodGet, "/v1/programs/"+unknown+"/state", nil, nil); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown key GET = %d, want 404", rec.Code)
	}
	if n := counterOf(mc, "serve.replica_serve_misses"); n != 1 {
		t.Fatalf("serve_misses = %d, want 1", n)
	}
	// A path-traversal-shaped key must be refused before it can touch
	// the filesystem.
	if rec := doReq(h, http.MethodGet, "/v1/programs/notakey/state", nil, nil); rec.Code != http.StatusNotFound {
		t.Fatalf("malformed key GET = %d, want 404", rec.Code)
	}
}

// TestStateGetEvictedProgram: an evicted-but-durable program serves its
// CHECKPOINT file bytes without being faulted back into memory.
func TestStateGetEvictedProgram(t *testing.T) {
	mc := metrics.New()
	s := mustNew(t, Config{Metrics: mc, StateDir: t.TempDir(), MaxPrograms: 1, CheckpointEvery: 1})
	defer s.Shutdown(context.Background())
	specA := libsafeSpec("t")
	specB := Spec{Tenant: "t", Workload: "memcached", Options: SpecOptions{Explore: "coverage", Budget: 8, Seed: 7}}
	waitJob(t, mustSubmit(t, s, specA))
	waitJob(t, mustSubmit(t, s, specB)) // evicts A (MaxPrograms=1)
	keyA := keyOf(t, specA)
	if s.store.pin(keyA) != nil {
		t.Fatal("program A still in memory; eviction did not happen")
	}
	rec := doReq(s.Handler(), http.MethodGet, "/v1/programs/"+keyA+"/state", nil, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET evicted = %d: %s", rec.Code, rec.Body.String())
	}
	ck, err := persist.DecodeCheckpoint(rec.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if ck.Key != keyA || ck.State.Explorations == 0 {
		t.Fatalf("evicted blob = key %.12s, %d explorations", ck.Key, ck.State.Explorations)
	}
	if s.store.pin(keyA) != nil {
		t.Fatal("serving the blob faulted the program back into memory")
	}
}

// warmBlob runs spec to completion on a throwaway server and returns
// the state blob its GET endpoint serves — a valid, warm checkpoint to
// feed offer tests.
func warmBlob(t *testing.T, spec Spec) []byte {
	t.Helper()
	s := mustNew(t, Config{})
	defer s.Shutdown(context.Background())
	waitJob(t, mustSubmit(t, s, spec))
	rec := doReq(s.Handler(), http.MethodGet, "/v1/programs/"+keyOf(t, spec)+"/state", nil, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("warm blob GET = %d", rec.Code)
	}
	return rec.Body.Bytes()
}

// TestStateOfferPaths pins the PUT protocol: import (200), stale (409),
// and every refusal path — garbage, wrong key, tampered fingerprint,
// truncated and oversized bodies.
func TestStateOfferPaths(t *testing.T) {
	spec := libsafeSpec("t")
	key := keyOf(t, spec)
	blob := warmBlob(t, spec)
	path := "/v1/programs/" + key + "/state"

	mc := metrics.New()
	s := mustNew(t, Config{Metrics: mc})
	defer s.Shutdown(context.Background())
	h := s.Handler()

	// First offer: the program is unknown here — imported wholesale.
	if rec := doReq(h, http.MethodPut, path, nil, blob); rec.Code != http.StatusOK {
		t.Fatalf("first PUT = %d: %s", rec.Code, rec.Body.String())
	}
	if n := counterOf(mc, "serve.replica_merges"); n != 1 {
		t.Fatalf("replica_merges = %d, want 1", n)
	}
	if n := counterOf(mc, "serve.store_programs"); n != 1 {
		t.Fatalf("store_programs = %d, want 1", n)
	}
	// The exact same blob again: nothing new — 409, the pusher's
	// convergence signal.
	if rec := doReq(h, http.MethodPut, path, nil, blob); rec.Code != http.StatusConflict {
		t.Fatalf("stale PUT = %d, want 409", rec.Code)
	}
	// The imported program must behave like a warm local one.
	st := waitJob(t, mustSubmit(t, s, spec))
	if !st.Resume {
		t.Fatal("submission after import did not resume warm")
	}

	for name, tc := range map[string]struct {
		path string
		hdr  map[string]string
		body []byte
		want int
	}{
		"garbage":       {path, nil, []byte("OWLCKPT1 not a frame"), http.StatusBadRequest},
		"truncated":     {path, nil, blob[:len(blob)/2], http.StatusBadRequest},
		"malformed key": {"/v1/programs/oops/state", nil, blob, http.StatusBadRequest},
		"wrong key":     {"/v1/programs/" + strings.Repeat("ee", 32) + "/state", nil, blob, http.StatusBadRequest},
		"oversized":     {path, nil, make([]byte, replicate.MaxBlobBytes+2), http.StatusRequestEntityTooLarge},
		"bad gzip":      {path, map[string]string{"Content-Encoding": "gzip"}, blob, http.StatusBadRequest},
	} {
		if rec := doReq(h, http.MethodPut, tc.path, tc.hdr, tc.body); rec.Code != tc.want {
			t.Errorf("%s PUT = %d, want %d", name, rec.Code, tc.want)
		}
	}

	// Tampered module fingerprint: identity check refuses with 422.
	ck, err := persist.DecodeCheckpoint(blob)
	if err != nil {
		t.Fatal(err)
	}
	ck.ModuleFP = strings.Repeat("00", 32)
	tampered, err := persist.EncodeCheckpoint(ck)
	if err != nil {
		t.Fatal(err)
	}
	discardedBefore := counterOf(mc, "serve.replica_discarded")
	if rec := doReq(h, http.MethodPut, path, nil, tampered); rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("tampered-fp PUT = %d, want 422", rec.Code)
	}
	if n := counterOf(mc, "serve.replica_discarded"); n != discardedBefore+1 {
		t.Fatalf("replica_discarded = %d, want %d", n, discardedBefore+1)
	}
}

// TestFleetWarmStart is the tentpole end to end: replica B's first
// sight of a program replica A already explored fetches A's state and
// resumes warm — strictly fewer schedules, byte-identical analysis.
func TestFleetWarmStart(t *testing.T) {
	// Asymmetric on purpose: A has no peers, so its state can reach B
	// only through B's cold-miss fetch — otherwise A's anti-entropy
	// push could race the fetch and make fetch_hits nondeterministic.
	ht := newHandlerTransport()
	a := mustNew(t, Config{Metrics: metrics.New()})
	ht.register("replica-a", a.Handler())
	b := mustNew(t, Config{
		Metrics:     metrics.New(),
		Peers:       []string{"http://replica-a"},
		PeerClient:  &http.Client{Transport: ht},
		PeerBackoff: time.Millisecond,
	})
	defer a.Shutdown(context.Background())
	defer b.Shutdown(context.Background())
	spec := libsafeSpec("t")

	stA := waitJob(t, mustSubmit(t, a, spec))
	stB := waitJob(t, mustSubmit(t, b, spec))
	if !stB.Resume {
		t.Fatal("replica B did not resume from A's state")
	}
	if stB.Result.ExecutedSchedules >= stA.Result.ExecutedSchedules {
		t.Fatalf("B executed %d schedules, A %d — warm start saved nothing",
			stB.Result.ExecutedSchedules, stA.Result.ExecutedSchedules)
	}
	if n := counterOf(b.Metrics(), "serve.replica_fetch_hits"); n != 1 {
		t.Fatalf("B replica_fetch_hits = %d, want 1", n)
	}
	if n := counterOf(a.Metrics(), "serve.replica_serve_hits"); n == 0 {
		t.Fatal("A served no state")
	}
	// Warm start must not change what the analysis reports.
	if normalizeTiming(stB.Result.SummaryText) != normalizeTiming(stA.Result.SummaryText) {
		t.Fatalf("summaries diverged:\nA: %s\nB: %s", stA.Result.SummaryText, stB.Result.SummaryText)
	}
}

// TestAntiEntropyPush: a replica that finishes a job pushes its state
// out; the peer absorbs it without ever being asked.
func TestAntiEntropyPush(t *testing.T) {
	fleet := newFleet(t, 2, func(i int) Config { return Config{} })
	a, b := fleet[0], fleet[1]
	spec := libsafeSpec("t")
	waitJob(t, mustSubmit(t, a, spec))

	// The offer rides an async queue; wait for B to absorb it.
	deadline := time.Now().Add(30 * time.Second)
	for counterOf(b.Metrics(), "serve.replica_merges") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("peer never absorbed the anti-entropy push")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// B now resumes warm with zero fetches: the state was pushed, not
	// pulled.
	st := waitJob(t, mustSubmit(t, b, spec))
	if !st.Resume {
		t.Fatal("B did not resume from the pushed state")
	}
	if n := counterOf(b.Metrics(), "serve.replica_fetch_hits"); n != 0 {
		t.Fatalf("B fetched %d times; push should have made fetching unnecessary", n)
	}
}

// TestPeerFaultMatrix is the acceptance gate: a submission NEVER fails
// because a peer is down, slow, serves truncated/corrupt bytes, or
// serves a stale blob. Each fault scenario runs a full submission on a
// replica whose only peers misbehave, and the job must complete.
func TestPeerFaultMatrix(t *testing.T) {
	spec := libsafeSpec("t")
	key := keyOf(t, spec)
	blob := warmBlob(t, spec)

	// A peer handler that serves the warm blob verbatim; the fault plan
	// on the client side damages what "arrives".
	servePeer := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && strings.Contains(r.URL.Path, key) {
			w.Write(blob)
			return
		}
		http.Error(w, "no", http.StatusNotFound)
	})

	for name, tc := range map[string]struct {
		rules    []faultinject.Rule
		peer     http.Handler
		wantWarm bool
	}{
		"peer down": {
			rules: []faultinject.Rule{{Stage: "replicate.get", Run: -1, Kind: faultinject.KindNetDown}},
			peer:  servePeer,
		},
		"peer slow": {
			// Slower than the peer timeout on every attempt: the fetch
			// must give up and the job proceed cold.
			rules: []faultinject.Rule{{Stage: "replicate.get", Run: -1, Kind: faultinject.KindNetSlow, DelayMS: 250}},
			peer:  servePeer,
		},
		"truncated blob": {
			rules: []faultinject.Rule{{Stage: "replicate.get.body", Run: -1, Kind: faultinject.KindNetTruncate}},
			peer:  servePeer,
		},
		"corrupt blob": {
			rules: []faultinject.Rule{{Stage: "replicate.get.body", Run: -1, Kind: faultinject.KindNetFlip, Bit: 1001}},
			peer:  servePeer,
		},
		"clean peer": { // control: with no faults the same setup resumes warm
			peer:     servePeer,
			wantWarm: true,
		},
	} {
		t.Run(name, func(t *testing.T) {
			ht := newHandlerTransport()
			ht.register("peer", tc.peer)
			mc := metrics.New()
			s := mustNew(t, Config{
				Metrics:     mc,
				Peers:       []string{"http://peer"},
				PeerClient:  &http.Client{Transport: ht},
				PeerTimeout: 100 * time.Millisecond,
				PeerBackoff: time.Millisecond,
				Faults:      &faultinject.Plan{Rules: tc.rules},
			})
			defer s.Shutdown(context.Background())
			st := waitJob(t, mustSubmit(t, s, spec)) // waitJob fails the test if the job failed
			if st.Resume != tc.wantWarm {
				t.Fatalf("resume = %v, want %v", st.Resume, tc.wantWarm)
			}
			if tc.wantWarm {
				if n := counterOf(mc, "serve.replica_fetch_hits"); n != 1 {
					t.Fatalf("fetch_hits = %d, want 1", n)
				}
			}
		})
	}
}

// TestStaleSeqOffer: a peer pushing an older view of a program the
// local replica has already surpassed gets 409, and local state is
// untouched.
func TestStaleSeqOffer(t *testing.T) {
	spec := libsafeSpec("t")
	key := keyOf(t, spec)
	stale := warmBlob(t, spec) // one full submission's worth of state

	s := mustNew(t, Config{})
	defer s.Shutdown(context.Background())
	// Locally the program has run twice — a strict superset of the
	// stale blob (same spec, same seed: the second run only adds).
	waitJob(t, mustSubmit(t, s, spec))
	waitJob(t, mustSubmit(t, s, spec))
	before := s.store.pin(key)
	if before == nil {
		t.Fatal("program not live")
	}
	expl := before.state.Explorations()
	s.store.release(before)

	rec := doReq(s.Handler(), http.MethodPut, "/v1/programs/"+key+"/state", nil, stale)
	if rec.Code != http.StatusConflict {
		t.Fatalf("stale offer = %d, want 409: %s", rec.Code, rec.Body.String())
	}
	after := s.store.pin(key)
	defer s.store.release(after)
	if after.state.Explorations() != expl {
		t.Fatalf("stale offer changed explorations %d -> %d", expl, after.state.Explorations())
	}
}

// TestConcurrentFetchVsEvict races the state-serving GET against LRU
// eviction and rehydration under -race: the pin must keep the blob
// consistent and the server must never 5xx.
func TestConcurrentFetchVsEvict(t *testing.T) {
	s := mustNew(t, Config{StateDir: t.TempDir(), MaxPrograms: 1, CheckpointEvery: 1})
	defer s.Shutdown(context.Background())
	h := s.Handler()
	specA := libsafeSpec("t")
	specB := Spec{Tenant: "t", Workload: "memcached", Options: SpecOptions{Explore: "coverage", Budget: 8, Seed: 7}}
	waitJob(t, mustSubmit(t, s, specA))
	keyA := keyOf(t, specA)
	path := "/v1/programs/" + keyA + "/state"

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec := doReq(h, http.MethodGet, path, nil, nil)
				if rec.Code >= 500 {
					t.Errorf("state GET = %d", rec.Code)
					return
				}
				if rec.Code == http.StatusOK {
					if _, err := persist.DecodeCheckpoint(rec.Body.Bytes()); err != nil {
						t.Errorf("served blob does not decode: %v", err)
						return
					}
				}
			}
		}()
	}
	// Alternate submissions so A and B keep evicting each other
	// (MaxPrograms=1) while the readers hammer A's state endpoint.
	for i := 0; i < 4; i++ {
		waitJob(t, mustSubmit(t, s, specB))
		waitJob(t, mustSubmit(t, s, specA))
	}
	close(stop)
	wg.Wait()
}

// TestJobsAndMetricsMethods pins the method/status surface of the job
// and metrics endpoints: GET patterns answer HEAD, wrong methods are
// 405 (with Allow), and conditional GETs on always-fresh resources are
// plain 200s.
func TestJobsAndMetricsMethods(t *testing.T) {
	s := mustNew(t, Config{})
	defer s.Shutdown(context.Background())
	h := s.Handler()
	j := mustSubmit(t, s, libsafeSpec("t"))
	waitJob(t, j)
	jobPath := "/v1/jobs/" + j.Status().ID

	for _, tc := range []struct {
		method, path string
		want         int
	}{
		{http.MethodHead, jobPath, http.StatusOK},
		{http.MethodHead, "/v1/jobs", http.StatusOK},
		{http.MethodHead, "/metrics", http.StatusOK},
		{http.MethodHead, "/v1/programs", http.StatusOK},
		{http.MethodDelete, jobPath, http.StatusMethodNotAllowed},
		{http.MethodPost, "/metrics", http.StatusMethodNotAllowed},
		{http.MethodPut, "/v1/jobs", http.StatusMethodNotAllowed},
		{http.MethodPost, jobPath, http.StatusMethodNotAllowed},
		{http.MethodDelete, "/v1/programs/" + strings.Repeat("ab", 32) + "/state", http.StatusMethodNotAllowed},
		{http.MethodHead, "/v1/jobs/job-999", http.StatusNotFound},
	} {
		rec := doReq(h, tc.method, tc.path, nil, nil)
		if rec.Code != tc.want {
			t.Errorf("%s %s = %d, want %d", tc.method, tc.path, rec.Code, tc.want)
		}
		if tc.want == http.StatusMethodNotAllowed && rec.Header().Get("Allow") == "" {
			t.Errorf("%s %s: 405 without Allow header", tc.method, tc.path)
		}
	}
	// Job statuses are not cacheable; conditional GETs are ignored.
	rec := doReq(h, http.MethodGet, jobPath, map[string]string{"If-None-Match": `"x"`}, nil)
	if rec.Code != http.StatusOK {
		t.Errorf("conditional GET %s = %d, want 200", jobPath, rec.Code)
	}
}
