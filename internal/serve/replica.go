// Fleet warm-start: the server side of replica state exchange plus the
// store hooks that fold peer knowledge in. The wire format is exactly
// the CHECKPOINT file format (persist.EncodeCheckpoint), so one
// validator guards the disk path and the network path; the trust rules
// are exactly rehydration's refuse-to-guess: a blob is used only if its
// source re-resolves to the same key and the resolved module's
// fingerprint matches, and a refused blob costs warmth, never a job.
//
// Endpoints (wired in Handler):
//
//	GET /v1/programs/{key}/state  the program's state blob. Live programs
//	                              serve a freshly composed checkpoint;
//	                              evicted-but-durable programs serve the
//	                              CHECKPOINT file bytes. ETag is the blob's
//	                              sequence number; If-None-Match returns
//	                              304, HEAD returns headers only, and
//	                              Accept-Encoding: gzip compresses.
//	PUT /v1/programs/{key}/state  an anti-entropy offer from a peer. The
//	                              blob is decoded, identity-verified, and
//	                              merged into live state (or imported if
//	                              the program is unknown here). 409 means
//	                              the offer contained nothing new — the
//	                              pusher's signal that the fleet has
//	                              converged on this program.
package serve

import (
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"github.com/conanalysis/owl/internal/serve/persist"
	"github.com/conanalysis/owl/internal/serve/replicate"
)

// validStateKey reports whether key looks like a content-hash store key
// (64 lowercase hex chars). The state endpoints refuse anything else up
// front — the key becomes a directory name in the persist store, and a
// crafted path segment must never escape it.
func validStateKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// stateBlob assembles the bytes GET serves for key: a live program
// composes a fresh checkpoint (pinned so eviction cannot race the
// read), an evicted program serves its durable CHECKPOINT file
// verbatim. ok is false when this replica has nothing for the key.
func (s *Server) stateBlob(key string) (blob []byte, seq uint64, ok bool) {
	if ps := s.store.pin(key); ps != nil {
		defer s.store.release(ps)
		if !ps.state.Warm() {
			return nil, 0, false
		}
		ps.pmu.Lock()
		ck := composeCheckpoint(ps)
		ps.pmu.Unlock()
		blob, err := persist.EncodeCheckpoint(ck)
		if err != nil {
			return nil, 0, false
		}
		return blob, ck.Seq, true
	}
	if s.store.pstore != nil {
		blob, ck, err := s.store.pstore.CheckpointBlob(key)
		if err == nil && ck.State.Explorations > 0 {
			return blob, ck.Seq, true
		}
	}
	return nil, 0, false
}

// handleStateGet serves a program's state blob to a peer (also matches
// HEAD via the mux's GET pattern).
func (s *Server) handleStateGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validStateKey(key) {
		writeJSON(w, http.StatusNotFound, apiError{Error: "malformed program key"})
		return
	}
	blob, seq, ok := s.stateBlob(key)
	if !ok {
		s.mc.Count("serve.replica_serve_misses", 1)
		writeJSON(w, http.StatusNotFound, apiError{Error: "no state for program"})
		return
	}
	s.mc.Count("serve.replica_serve_hits", 1)
	etag := fmt.Sprintf("%q", strconv.FormatUint(seq, 10))
	w.Header().Set("ETag", etag)
	w.Header().Set("X-Owl-State-Seq", strconv.FormatUint(seq, 10))
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if r.Method == http.MethodHead {
		w.Header().Set("Content-Length", strconv.Itoa(len(blob)))
		w.WriteHeader(http.StatusOK)
		return
	}
	// Compression is negotiated explicitly: the peer client and the
	// in-process loadgen transports bypass net/http's transparent gzip.
	if strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") {
		w.Header().Set("Content-Encoding", "gzip")
		w.WriteHeader(http.StatusOK)
		gz := gzip.NewWriter(w)
		gz.Write(blob)
		gz.Close()
		return
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(blob)))
	w.WriteHeader(http.StatusOK)
	w.Write(blob)
}

// handleStateOffer accepts an anti-entropy push. Status codes are the
// convergence protocol: 200 the offer taught this replica something,
// 409 it was entirely stale, 4xx/422 the blob was refused (malformed,
// wrong identity, or unresolvable against the local module).
func (s *Server) handleStateOffer(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validStateKey(key) {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "malformed program key"})
		return
	}
	body, err := readStateBody(w, r)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, apiError{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusBadRequest, apiError{Error: "read blob: " + err.Error()})
		return
	}
	ck, err := persist.DecodeCheckpoint(body)
	if err != nil {
		s.mc.Count("serve.replica_discarded", 1)
		writeJSON(w, http.StatusBadRequest, apiError{Error: "decode blob: " + err.Error()})
		return
	}
	if ck.Key != key {
		s.mc.Count("serve.replica_discarded", 1)
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("blob is for key %.12s, not %.12s", ck.Key, key)})
		return
	}
	code, err := s.importOffer(&ck)
	if err != nil {
		writeJSON(w, code, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, code, map[string]any{"accepted": true})
}

// readStateBody reads an offer body, transparently gunzipping and
// enforcing the blob size bound.
func readStateBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	reader := io.Reader(http.MaxBytesReader(w, r.Body, replicate.MaxBlobBytes))
	if r.Header.Get("Content-Encoding") == "gzip" {
		gz, err := gzip.NewReader(reader)
		if err != nil {
			return nil, err
		}
		defer gz.Close()
		reader = gz
	}
	return io.ReadAll(reader)
}

// importOffer folds a decoded, key-checked offer into the store. The
// identity checks run BEFORE acquire: a blob whose source does not
// re-resolve to its claimed key, or whose module fingerprint disagrees
// with the locally resolved program, must not materialize anything.
func (s *Server) importOffer(ck *persist.Checkpoint) (int, error) {
	spec := specFromSource(ck.Source)
	prog, name, rkey, err := resolve(spec)
	if err != nil {
		s.mc.Count("serve.replica_discarded", 1)
		return http.StatusUnprocessableEntity, fmt.Errorf("blob source does not resolve: %w", err)
	}
	if rkey != ck.Key {
		s.mc.Count("serve.replica_discarded", 1)
		return http.StatusUnprocessableEntity, fmt.Errorf("blob source re-resolves to key %.12s, not %.12s", rkey, ck.Key)
	}
	if fp := prog.Module.Fingerprint(); fp != ck.ModuleFP {
		s.mc.Count("serve.replica_discarded", 1)
		return http.StatusUnprocessableEntity, fmt.Errorf("module fingerprint %.12s does not match blob %.12s", fp, ck.ModuleFP)
	}
	// allowPeer=false: accepting a push must not trigger a fetch back at
	// the pusher.
	ps, outcome := s.store.acquireSeeded(ck.Key, name, prog, sourceOf(spec), ck, false)
	defer s.store.release(ps)
	switch outcome {
	case acqImported:
		s.mc.Count("serve.store_programs", 1)
		s.mc.Count("serve.replica_merges", 1)
		return http.StatusOK, nil
	case acqFresh:
		// The identity checks passed but the state import still refused
		// (an unresolvable stable position). The fresh cold program stays
		// — it is a perfectly valid program — but the offer taught us
		// nothing.
		s.mc.Count("serve.store_programs", 1)
		return http.StatusUnprocessableEntity, fmt.Errorf("blob state does not resolve against module")
	}
	// Already live here (or rehydrated from our own disk): merge.
	changed, err := ps.mergeSnapshot(ck)
	if err != nil {
		s.mc.Count("serve.replica_discarded", 1)
		return http.StatusUnprocessableEntity, err
	}
	if !changed {
		return http.StatusConflict, fmt.Errorf("offer is stale: nothing new")
	}
	s.mc.Count("serve.replica_merges", 1)
	return http.StatusOK, nil
}

// mergeSnapshot unions a peer checkpoint into live state: coverage and
// seen-reports merge through ExploreState.Merge (journaled, so the
// knowledge reaches the WAL with the next job), report IDs union into
// the dedup set. Submission counts deliberately do NOT merge — they
// count what THIS replica was asked to do. Returns false when the blob
// contained nothing new.
func (ps *programState) mergeSnapshot(ck *persist.Checkpoint) (bool, error) {
	changed, err := ps.state.Merge(ps.prog.Module, ck.State)
	if err != nil {
		return false, err
	}
	ps.mu.Lock()
	for _, id := range ck.Reports {
		if !ps.reports[id] {
			ps.reports[id] = true
			ps.order = append(ps.order, id)
			changed = true
		}
	}
	ps.mu.Unlock()
	return changed, nil
}

// offerState enqueues ps's current state for anti-entropy push. Cheap
// and non-blocking (Offer is async); nil-safe when replication is off.
func (s *Server) offerState(ps *programState) {
	if s.rep == nil {
		return
	}
	s.rep.Offer(composeCheckpoint(ps))
}
