package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func postJob(t *testing.T, ts *httptest.Server, spec Spec) *http.Response {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode %T: %v", v, err)
	}
	return v
}

// TestHTTPSubmitAndPoll drives the happy path end to end over HTTP:
// 202 + Location on submit, polled GET converging to state=done with a
// result, the jobs listing, the programs listing, /metrics exposing the
// serve.* series, and /healthz.
func TestHTTPSubmitAndPoll(t *testing.T) {
	s := mustNew(t, Config{Shards: 2})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJob(t, ts, libsafeSpec("http"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	loc := resp.Header.Get("Location")
	st := decode[JobStatus](t, resp)
	if loc != "/v1/jobs/"+st.ID {
		t.Errorf("Location = %q, want /v1/jobs/%s", loc, st.ID)
	}

	deadline := time.Now().Add(60 * time.Second)
	for st.State != StateDone {
		if st.State == StateFailed {
			t.Fatalf("job failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q", st.State)
		}
		time.Sleep(2 * time.Millisecond)
		r, err := ts.Client().Get(ts.URL + loc)
		if err != nil {
			t.Fatal(err)
		}
		st = decode[JobStatus](t, r)
	}
	if st.Result == nil || st.Result.SummaryText == "" {
		t.Fatal("done job has no summary")
	}

	jobs := decode[[]JobStatus](t, mustGet(t, ts, "/v1/jobs"))
	if len(jobs) != 1 || jobs[0].ID != st.ID {
		t.Errorf("jobs listing = %+v, want the one submitted job", jobs)
	}
	progs := decode[[]ProgramInfo](t, mustGet(t, ts, "/v1/programs"))
	if len(progs) != 1 || progs[0].Submissions != 1 {
		t.Errorf("programs listing = %+v, want one program with one submission", progs)
	}

	var metricsDoc struct {
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
		Gauges []struct {
			Name  string  `json:"name"`
			Value float64 `json:"value"`
		} `json:"gauges"`
	}
	r := mustGet(t, ts, "/metrics")
	if err := json.NewDecoder(r.Body).Decode(&metricsDoc); err != nil {
		t.Fatalf("metrics decode: %v", err)
	}
	r.Body.Close()
	found := map[string]int64{}
	for _, c := range metricsDoc.Counters {
		found[c.Name] = c.Value
	}
	if found["serve.jobs_submitted"] != 1 || found["serve.jobs_completed"] != 1 {
		t.Errorf("metrics counters = %v, want serve.jobs_submitted=1 serve.jobs_completed=1", found)
	}
	if found["owl.detect_runs"] == 0 {
		t.Error("merged pipeline counter owl.detect_runs missing from /metrics")
	}
	hasQueueGauge := false
	for _, g := range metricsDoc.Gauges {
		if g.Name == "serve.queue_depth" {
			hasQueueGauge = true
		}
	}
	if !hasQueueGauge {
		t.Error("serve.queue_depth gauge missing from /metrics")
	}

	if hr := mustGet(t, ts, "/healthz"); hr.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d, want 200", hr.StatusCode)
	}
}

func mustGet(t *testing.T, ts *httptest.Server, path string) *http.Response {
	t.Helper()
	r, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestHTTPBackpressure pins the wire shape of rejection: 429 with a
// Retry-After header for queue/quota pressure, 404 for unknown jobs,
// 400 for malformed specs, and 503 once draining.
func TestHTTPBackpressure(t *testing.T) {
	s := mustNew(t, Config{Shards: 1, QueueDepth: 1, RetryAfter: 2 * time.Second})
	release := gateRunJob(s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	r1 := postJob(t, ts, libsafeSpec("a"))
	if r1.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d, want 202", r1.StatusCode)
	}
	st := decode[JobStatus](t, r1)

	r2 := postJob(t, ts, libsafeSpec("a"))
	if r2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit = %d, want 429", r2.StatusCode)
	}
	if ra := r2.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want %q", ra, "2")
	}
	r2.Body.Close()

	if r := mustGet(t, ts, "/v1/jobs/nope"); r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", r.StatusCode)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed spec = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	release()
	j, _ := s.Job(st.ID)
	waitJob(t, j)
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	r3 := postJob(t, ts, libsafeSpec("a"))
	if r3.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while drained = %d, want 503", r3.StatusCode)
	}
	r3.Body.Close()
	if hr := mustGet(t, ts, "/healthz"); hr.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while drained = %d, want 503", hr.StatusCode)
	}
}

// TestHTTPStream pins the SSE contract: the stream yields status events
// and closes after a final `done` event carrying the result; a stream
// opened after completion yields `done` immediately.
func TestHTTPStream(t *testing.T) {
	s := mustNew(t, Config{Shards: 1})
	defer s.Shutdown(context.Background())
	release := gateRunJob(s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJob(t, ts, libsafeSpec("a"))
	st := decode[JobStatus](t, resp)

	streamResp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()
	if ct := streamResp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream Content-Type = %q", ct)
	}
	release()

	events := readSSE(t, streamResp)
	last := events[len(events)-1]
	if last.name != "done" {
		t.Fatalf("last event = %q, want done (events: %+v)", last.name, events)
	}
	var final JobStatus
	if err := json.Unmarshal([]byte(last.data), &final); err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Result == nil {
		t.Errorf("final stream event state = %q result=%v, want done with result", final.State, final.Result != nil)
	}

	// Streaming a finished job short-circuits to done.
	again, err := ts.Client().Get(ts.URL + "/v1/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer again.Body.Close()
	ev := readSSE(t, again)
	if len(ev) != 1 || ev[0].name != "done" {
		t.Errorf("post-completion stream = %+v, want single done event", ev)
	}
}

type sseEvent struct{ name, data string }

// readSSE parses a complete SSE response body into events.
func readSSE(t *testing.T, resp *http.Response) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.name != "" || cur.data != "" {
				events = append(events, cur)
				cur = sseEvent{}
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("no SSE events")
	}
	return events
}
