package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"

	"github.com/conanalysis/owl/internal/cliflags"
	"github.com/conanalysis/owl/internal/interp"
	"github.com/conanalysis/owl/internal/ir"
	"github.com/conanalysis/owl/internal/metrics"
	"github.com/conanalysis/owl/internal/owl"
	"github.com/conanalysis/owl/internal/workloads"
)

// Spec is one submission: the program to analyze (a built-in workload or
// an inline .oir source) plus the pipeline options. The options mirror
// the cmd/owl flag set field for field — the same strings -engine and
// -explore accept, validated through the same cliflags helpers — so a
// submission is exactly "a cmd/owl invocation over HTTP" and the parity
// gate can hold the two to byte-identical output.
type Spec struct {
	// Tenant attributes the job for quota accounting ("" = "anonymous").
	Tenant string `json:"tenant,omitempty"`

	// Workload/Recipe/Noise select a built-in workload, mirroring
	// cmd/owl's -workload/-recipe/-noise (recipe "" = the workload's
	// first attack recipe; noise "" = light).
	Workload string `json:"workload,omitempty"`
	Recipe   string `json:"recipe,omitempty"`
	Noise    string `json:"noise,omitempty"`

	// Program is an inline .oir module source, mirroring -file; Inputs
	// mirrors -inputs. Exactly one of Workload and Program must be set.
	Program string  `json:"program,omitempty"`
	Inputs  []int64 `json:"inputs,omitempty"`

	Options SpecOptions `json:"options"`
}

// SpecOptions mirrors the shared cmd/owl flags (internal/cliflags). The
// zero value of every field means "the flag's default", with one serve
// deviation: Explore defaults to "coverage", because resume — the point
// of an always-on service — only exists there. Submissions wanting the
// CLI default ask for "fixed" explicitly.
type SpecOptions struct {
	Engine          string `json:"engine,omitempty"`
	Explore         string `json:"explore,omitempty"`
	Budget          int    `json:"budget,omitempty"`
	Seed            uint64 `json:"seed,omitempty"`
	Runs            int    `json:"runs,omitempty"` // fixed-mode detect runs (-runs)
	Workers         int    `json:"workers,omitempty"`
	MaxSteps        int    `json:"max_steps,omitempty"`
	SnapCache       int    `json:"snap_cache,omitempty"` // per-job cache when the store's persistent one is not in play
	Predict         bool   `json:"predict,omitempty"`
	PredictReversal bool   `json:"predict_reversal,omitempty"`
}

// validate normalizes the options through the cliflags validators and
// returns the resolved engine and explore mode.
func (o SpecOptions) validate() (interp.Engine, owl.ExploreMode, error) {
	sh := cliflags.Shared{Engine: o.Engine, Explore: o.Explore}
	if sh.Engine == "" {
		sh.Engine = "tree"
	}
	if sh.Explore == "" {
		sh.Explore = string(owl.ExploreCoverage)
	}
	eng, err := sh.EngineVal()
	if err != nil {
		return "", "", err
	}
	mode, err := sh.Mode()
	if err != nil {
		return "", "", err
	}
	if o.Budget < 0 || o.Runs < 0 || o.Workers < 0 || o.MaxSteps < 0 || o.SnapCache < 0 {
		return "", "", fmt.Errorf("negative option values are invalid")
	}
	return eng, mode, nil
}

// resumeEligible reports whether a job with these options participates
// in cross-submission resume: only plain coverage-guided exploration
// feeds and consumes the persistent ExploreState (owl.Options doc).
func (o SpecOptions) resumeEligible() bool {
	return (o.Explore == "" || o.Explore == string(owl.ExploreCoverage)) && !o.Predict
}

// resolve turns a spec into the program identity the store is keyed by:
// the runnable owl.Program, the display name cmd/owl would print, and
// the content-hash key. Workload submissions hash the registry identity
// (name, noise, recipe — the module is a pure function of those);
// inline submissions hash the source text and inputs. Options are NOT
// part of the key on purpose: two submissions of one program at
// different budgets explore one schedule space and must share one
// state.
func resolve(spec Spec) (owl.Program, string, string, error) {
	if (spec.Workload == "") == (spec.Program == "") {
		return owl.Program{}, "", "", fmt.Errorf("exactly one of workload and program must be set")
	}
	h := sha256.New()
	if spec.Program != "" {
		mod, err := ir.Parse("submitted.oir", spec.Program)
		if err != nil {
			return owl.Program{}, "", "", fmt.Errorf("parse program: %w", err)
		}
		h.Write([]byte("oir\x00"))
		h.Write([]byte(spec.Program))
		h.Write([]byte{0})
		var buf [8]byte
		for _, in := range spec.Inputs {
			binary.LittleEndian.PutUint64(buf[:], uint64(in))
			h.Write(buf[:])
		}
		prog := owl.Program{Module: mod, Inputs: spec.Inputs, MaxSteps: 500000}
		return prog, "submitted.oir", hex.EncodeToString(h.Sum(nil)), nil
	}
	if len(spec.Inputs) > 0 {
		return owl.Program{}, "", "", fmt.Errorf("inputs are only valid with an inline program (workloads carry recipes)")
	}
	noise := spec.Noise
	if noise == "" {
		noise = "light"
	}
	if noise != "light" && noise != "full" {
		return owl.Program{}, "", "", fmt.Errorf("unknown noise %q (want light or full)", spec.Noise)
	}
	lvl := workloads.NoiseLight
	if noise == "full" {
		lvl = workloads.NoiseFull
	}
	w := workloads.Get(spec.Workload, lvl)
	if w == nil {
		return owl.Program{}, "", "", fmt.Errorf("unknown workload %q", spec.Workload)
	}
	recipe := spec.Recipe
	if recipe == "" {
		if len(w.Attacks) > 0 {
			recipe = w.Attacks[0].InputRecipe
		} else if len(w.Recipes) > 0 {
			recipe = w.Recipes[0].Name
		}
	}
	rec := w.Recipe(recipe)
	fmt.Fprintf(h, "workload\x00%s\x00%s\x00%s", w.Name, noise, rec.Name)
	prog := owl.Program{Module: w.Module, Entry: w.Entry, Inputs: rec.Inputs, MaxSteps: w.MaxSteps}
	return prog, fmt.Sprintf("%s/%s", w.Name, rec.Name), hex.EncodeToString(h.Sum(nil)), nil
}

// Job states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// JobStatus is the wire representation of a job, returned by the status
// endpoint and streamed as SSE event payloads.
type JobStatus struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Tenant string `json:"tenant"`
	// Key is the program's content hash — submissions sharing it share
	// one accumulated exploration state.
	Key   string `json:"key"`
	Name  string `json:"name"`
	Shard int    `json:"shard"`
	// Resume reports whether the job started against warm state (a prior
	// exploration of the same program had been absorbed).
	Resume bool       `json:"resume"`
	Error  string     `json:"error,omitempty"`
	Result *JobResult `json:"result,omitempty"`
}

// JobResult is the completed-job payload.
type JobResult struct {
	// SummaryText is byte-identical to what cmd/owl prints for the same
	// program and options on a fresh state (report.Text).
	SummaryText     string `json:"summary_text"`
	RawReports      int    `json:"raw_reports"`
	Remaining       int    `json:"remaining"`
	Findings        int    `json:"findings"`
	VerifiedAttacks int    `json:"verified_attacks"`
	// ExecutedSchedules is the owl.detect_runs count — the number the
	// resume gate requires to shrink on repeat submissions.
	ExecutedSchedules int64 `json:"executed_schedules"`
	// NewReports/KnownReports split this submission's raw reports by
	// whether the store had already recorded them; StoreReports is the
	// accumulated deduplicated total for the program.
	NewReports   int `json:"new_reports"`
	KnownReports int `json:"known_reports"`
	StoreReports int `json:"store_reports"`
	// Submissions counts completed jobs for this program, this one
	// included.
	Submissions int     `json:"submissions"`
	ElapsedMS   float64 `json:"elapsed_ms"`
}

// Job is one accepted submission moving through a shard queue.
type Job struct {
	spec  Spec
	ps    *programState
	shard int

	mu     sync.Mutex
	status JobStatus
	subs   map[chan JobStatus]struct{}
	done   chan struct{}

	// mc is the job-local collector; it feeds the stream's progress
	// events while the pipeline runs and is merged into the server
	// collector when the job finishes.
	mc *metrics.Collector
}

func newJob(id string, spec Spec, ps *programState, shard int) *Job {
	return &Job{
		spec:  spec,
		ps:    ps,
		shard: shard,
		status: JobStatus{
			ID: id, State: StateQueued, Tenant: spec.Tenant,
			Key: ps.key, Name: ps.name, Shard: shard,
		},
		subs: make(map[chan JobStatus]struct{}),
		done: make(chan struct{}),
		mc:   metrics.New(),
	}
}

// Status returns a copy of the job's current wire state.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// update mutates the status under the lock and publishes the new state
// to every subscriber (non-blocking: a slow stream consumer misses
// intermediate states but always sees the terminal one via done).
func (j *Job) update(f func(*JobStatus)) {
	j.mu.Lock()
	f(&j.status)
	st := j.status
	terminal := st.State == StateDone || st.State == StateFailed
	for ch := range j.subs {
		select {
		case ch <- st:
		default:
		}
	}
	j.mu.Unlock()
	if terminal {
		close(j.done)
	}
}

// subscribe registers a status channel; cancel unregisters it.
func (j *Job) subscribe() (<-chan JobStatus, func()) {
	ch := make(chan JobStatus, 8)
	j.mu.Lock()
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
}
