package replicate

import (
	"compress/gzip"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/conanalysis/owl/internal/faultinject"
	"github.com/conanalysis/owl/internal/metrics"
	"github.com/conanalysis/owl/internal/sched"
	"github.com/conanalysis/owl/internal/serve/persist"
)

// testKey is a syntactically valid content-hash key (64 hex chars).
var testKey = strings.Repeat("ab", 32)

func testCheckpoint(key string, explorations int) persist.Checkpoint {
	return persist.Checkpoint{
		Key:  key,
		Name: "t",
		Seq:  uint64(explorations),
		State: sched.StateSnapshot{
			Seen:         []string{"r1"},
			Explorations: explorations,
		},
	}
}

func counter(mc *metrics.Collector, name string) int64 {
	for _, c := range mc.Snapshot().Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// blobPeer is an httptest peer that serves one checkpoint blob and
// records the PUTs it receives.
type blobPeer struct {
	t *testing.T

	mu   sync.Mutex
	blob []byte // served on GET for its key (nil = 404 everything)
	key  string
	puts [][]byte
	code int // PUT response status (default 200)
	gzip bool
}

func (p *blobPeer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch r.Method {
	case http.MethodGet:
		if p.blob == nil || !strings.Contains(r.URL.Path, p.key) {
			http.Error(w, "no state", http.StatusNotFound)
			return
		}
		if p.gzip && strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") {
			w.Header().Set("Content-Encoding", "gzip")
			gz := gzip.NewWriter(w)
			gz.Write(p.blob)
			gz.Close()
			return
		}
		w.Write(p.blob)
	case http.MethodPut:
		body, err := io.ReadAll(r.Body)
		if err != nil {
			p.t.Errorf("peer read PUT body: %v", err)
		}
		p.puts = append(p.puts, body)
		code := p.code
		if code == 0 {
			code = http.StatusOK
		}
		w.WriteHeader(code)
	default:
		http.Error(w, "method", http.StatusMethodNotAllowed)
	}
}

func (p *blobPeer) putCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.puts)
}

func newReplicator(t *testing.T, cfg Config) *Replicator {
	t.Helper()
	r := New(cfg)
	if r == nil {
		t.Fatal("New returned nil for a non-empty peer list")
	}
	t.Cleanup(r.Close)
	return r
}

func TestNilReplicatorIsInert(t *testing.T) {
	r := New(Config{})
	if r != nil {
		t.Fatal("New with no peers should return nil")
	}
	if r.Enabled() {
		t.Fatal("nil replicator reports Enabled")
	}
	if ck := r.Fetch(context.Background(), testKey); ck != nil {
		t.Fatalf("nil replicator fetched %v", ck)
	}
	r.Offer(testCheckpoint(testKey, 1))
	if err := r.Flush(context.Background()); err != nil {
		t.Fatalf("nil Flush: %v", err)
	}
	r.Close()
}

func TestFetchHitMissAndGzip(t *testing.T) {
	for _, gz := range []bool{false, true} {
		ck := testCheckpoint(testKey, 7)
		blob, err := persist.EncodeCheckpoint(ck)
		if err != nil {
			t.Fatal(err)
		}
		peer := &blobPeer{t: t, blob: blob, key: testKey, gzip: gz}
		srv := httptest.NewServer(peer)
		defer srv.Close()
		mc := metrics.New()
		r := newReplicator(t, Config{Peers: []string{srv.URL}, Metrics: mc})

		got := r.Fetch(context.Background(), testKey)
		if got == nil {
			t.Fatalf("gzip=%v: fetch returned nil for a served key", gz)
		}
		if got.Key != testKey || got.State.Explorations != 7 {
			t.Fatalf("gzip=%v: fetched %+v", gz, got)
		}
		if miss := r.Fetch(context.Background(), strings.Repeat("cd", 32)); miss != nil {
			t.Fatalf("gzip=%v: fetch of unknown key returned %+v", gz, miss)
		}
		if n := counter(mc, "serve.replica_fetch_misses"); n != 1 {
			t.Fatalf("gzip=%v: fetch_misses = %d, want 1", gz, n)
		}
		// The 404 answered cleanly; no fetch errors.
		if n := counter(mc, "serve.replica_fetch_errors"); n != 0 {
			t.Fatalf("gzip=%v: fetch_errors = %d, want 0", gz, n)
		}
	}
}

// TestFetchMismatchedKeyRejected: a peer serving bytes for the wrong
// key (a routing bug or a malicious peer) is an error, not a hit.
func TestFetchMismatchedKeyRejected(t *testing.T) {
	other := strings.Repeat("cd", 32)
	blob, err := persist.EncodeCheckpoint(testCheckpoint(other, 3))
	if err != nil {
		t.Fatal(err)
	}
	peer := &blobPeer{t: t, blob: blob, key: testKey} // serves other's blob under testKey's path
	srv := httptest.NewServer(peer)
	defer srv.Close()
	mc := metrics.New()
	r := newReplicator(t, Config{Peers: []string{srv.URL}, Metrics: mc})
	if got := r.Fetch(context.Background(), testKey); got != nil {
		t.Fatalf("mis-keyed blob accepted: %+v", got)
	}
	if n := counter(mc, "serve.replica_fetch_errors"); n != 1 {
		t.Fatalf("fetch_errors = %d, want 1", n)
	}
}

// TestFetchRetriesNetDown: a net-down fault on the first request is
// retried and the second attempt succeeds — deterministic retry-path
// coverage without a flaky network.
func TestFetchRetriesNetDown(t *testing.T) {
	blob, err := persist.EncodeCheckpoint(testCheckpoint(testKey, 2))
	if err != nil {
		t.Fatal(err)
	}
	peer := &blobPeer{t: t, blob: blob, key: testKey}
	srv := httptest.NewServer(peer)
	defer srv.Close()
	plan := &faultinject.Plan{Rules: []faultinject.Rule{
		{Stage: "replicate.get", Run: 0, Kind: faultinject.KindNetDown},
	}}
	mc := metrics.New()
	r := newReplicator(t, Config{
		Peers:   []string{srv.URL},
		Backoff: time.Millisecond,
		Faults:  plan,
		Metrics: mc,
	})
	if got := r.Fetch(context.Background(), testKey); got == nil {
		t.Fatal("fetch failed despite a healthy retry")
	}
	if n := counter(mc, "serve.replica_fetch_attempts"); n != 2 {
		t.Fatalf("fetch_attempts = %d, want 2 (net-down then success)", n)
	}
}

// TestFetchDamagedBodyDiscarded: truncated and bit-flipped blobs fail
// the CRC/frame validation and are discarded — never returned.
func TestFetchDamagedBodyDiscarded(t *testing.T) {
	for _, kind := range []faultinject.Kind{faultinject.KindNetTruncate, faultinject.KindNetFlip} {
		blob, err := persist.EncodeCheckpoint(testCheckpoint(testKey, 5))
		if err != nil {
			t.Fatal(err)
		}
		peer := &blobPeer{t: t, blob: blob, key: testKey}
		srv := httptest.NewServer(peer)
		defer srv.Close()
		plan := &faultinject.Plan{Rules: []faultinject.Rule{
			// Run is the per-(peer,op,key) request sequence: damage
			// exactly the first response body, leave the retry clean.
			{Stage: "replicate.get.body", Run: 0, Kind: kind, Bit: 77},
		}}
		mc := metrics.New()
		r := newReplicator(t, Config{Peers: []string{srv.URL}, Retries: -1, Faults: plan, Metrics: mc})
		if got := r.Fetch(context.Background(), testKey); got != nil {
			t.Fatalf("%s: damaged blob accepted: %+v", kind, got)
		}
		if n := counter(mc, "serve.replica_fetch_errors"); n != 1 {
			t.Fatalf("%s: fetch_errors = %d, want 1", kind, n)
		}
		// Only request sequence 0 is damaged: the next fetch is clean.
		if got := r.Fetch(context.Background(), testKey); got == nil {
			t.Fatalf("%s: clean refetch failed", kind)
		}
	}
}

// TestNetSlowHonorsTimeout: a net-slow fault longer than the request
// context stalls the request into a context error instead of hanging.
func TestNetSlowHonorsTimeout(t *testing.T) {
	plan := &faultinject.Plan{Rules: []faultinject.Rule{
		{Stage: "replicate.get", Run: -1, Kind: faultinject.KindNetSlow, DelayMS: 60000},
	}}
	mc := metrics.New()
	r := newReplicator(t, Config{Peers: []string{"http://127.0.0.1:1"}, Retries: -1, Faults: plan, Metrics: mc})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	if got := r.Fetch(ctx, testKey); got != nil {
		t.Fatalf("stalled fetch returned %+v", got)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("net-slow ignored the context")
	}
}

// TestPeerCooldown: downAfter consecutive transport failures put a peer
// in cooldown, during which Fetch skips it entirely.
func TestPeerCooldown(t *testing.T) {
	mc := metrics.New()
	r := newReplicator(t, Config{
		Peers:    []string{"http://127.0.0.1:1"}, // nothing listens here
		Retries:  -1,
		Timeout:  200 * time.Millisecond,
		CoolDown: time.Hour,
		Metrics:  mc,
	})
	for i := 0; i < downAfter; i++ {
		if got := r.Fetch(context.Background(), testKey); got != nil {
			t.Fatalf("fetch %d returned %+v", i, got)
		}
	}
	if n := counter(mc, "serve.replica_peer_down"); n != 1 {
		t.Fatalf("peer_down = %d, want 1", n)
	}
	before := counter(mc, "serve.replica_fetch_attempts")
	if got := r.Fetch(context.Background(), testKey); got != nil {
		t.Fatalf("fetch from down peer returned %+v", got)
	}
	if after := counter(mc, "serve.replica_fetch_attempts"); after != before {
		t.Fatalf("down peer was contacted: attempts %d -> %d", before, after)
	}
}

func TestOfferPushFlushAndStale(t *testing.T) {
	peerA := &blobPeer{t: t, key: testKey}
	peerB := &blobPeer{t: t, key: testKey, code: http.StatusConflict}
	srvA, srvB := httptest.NewServer(peerA), httptest.NewServer(peerB)
	defer srvA.Close()
	defer srvB.Close()
	mc := metrics.New()
	r := newReplicator(t, Config{Peers: []string{srvA.URL, srvB.URL}, Metrics: mc})

	ck := testCheckpoint(testKey, 9)
	want, err := persist.EncodeCheckpoint(ck)
	if err != nil {
		t.Fatal(err)
	}
	r.Offer(ck)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := r.Flush(ctx); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if peerA.putCount() != 1 || peerB.putCount() != 1 {
		t.Fatalf("puts = %d/%d, want 1/1", peerA.putCount(), peerB.putCount())
	}
	peerA.mu.Lock()
	got := peerA.puts[0]
	peerA.mu.Unlock()
	if string(got) != string(want) {
		t.Fatal("pushed blob differs from EncodeCheckpoint bytes")
	}
	if n := counter(mc, "serve.replica_push_ok"); n != 1 {
		t.Fatalf("push_ok = %d, want 1", n)
	}
	// Peer B answered 409: a stale offer, not an error and not a health
	// failure.
	if n := counter(mc, "serve.replica_push_stale"); n != 1 {
		t.Fatalf("push_stale = %d, want 1", n)
	}
	if n := counter(mc, "serve.replica_push_errors"); n != 0 {
		t.Fatalf("push_errors = %d, want 0", n)
	}
}

// TestOfferLatestWins: offers queued behind a busy worker collapse to
// the newest blob per key.
func TestOfferLatestWins(t *testing.T) {
	release := make(chan struct{})
	var mu sync.Mutex
	var bodies [][]byte
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
		b, _ := io.ReadAll(r.Body)
		mu.Lock()
		bodies = append(bodies, b)
		mu.Unlock()
	}))
	defer slow.Close()
	mc := metrics.New()
	r := newReplicator(t, Config{Peers: []string{slow.URL}, Retries: -1, Timeout: 10 * time.Second, Metrics: mc})

	otherKey := strings.Repeat("cd", 32)
	r.Offer(testCheckpoint(otherKey, 1)) // worker picks this up and blocks in the PUT
	// Wait until the worker is actually inside the push so the next
	// offers queue behind it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		r.mu.Lock()
		busy := r.inflight
		r.mu.Unlock()
		if busy || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	r.Offer(testCheckpoint(testKey, 1))
	r.Offer(testCheckpoint(testKey, 2)) // replaces the queued offer
	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := r.Flush(ctx); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	mu.Lock()
	n := len(bodies)
	last := bodies[n-1]
	mu.Unlock()
	if n != 2 {
		t.Fatalf("peer saw %d PUTs, want 2 (latest-wins collapsed the middle offer)", n)
	}
	ck, err := persist.DecodeCheckpoint(last)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Key != testKey || ck.State.Explorations != 2 {
		t.Fatalf("last push = %+v, want the newest offer for %s", ck, testKey[:8])
	}
}

// TestPushErrorTripsHealth: a push to a dead peer counts an error and
// feeds the same health accounting as fetch failures.
func TestPushErrorTripsHealth(t *testing.T) {
	mc := metrics.New()
	r := newReplicator(t, Config{
		Peers:   []string{"http://127.0.0.1:1"},
		Retries: -1,
		Timeout: 200 * time.Millisecond,
		Metrics: mc,
	})
	for i := 0; i < downAfter; i++ {
		r.Offer(testCheckpoint(testKey, i+1))
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := r.Flush(ctx); err != nil {
			cancel()
			t.Fatalf("Flush: %v", err)
		}
		cancel()
	}
	if n := counter(mc, "serve.replica_push_errors"); n != int64(downAfter) {
		t.Fatalf("push_errors = %d, want %d", n, downAfter)
	}
	if n := counter(mc, "serve.replica_peer_down"); n != 1 {
		t.Fatalf("peer_down = %d, want 1", n)
	}
}

func TestCloseDrainsQueue(t *testing.T) {
	peer := &blobPeer{t: t, key: testKey}
	srv := httptest.NewServer(peer)
	defer srv.Close()
	r := New(Config{Peers: []string{srv.URL}, Metrics: metrics.New()})
	r.Offer(testCheckpoint(testKey, 1))
	r.Close() // must push the queued offer before stopping
	if peer.putCount() != 1 {
		t.Fatalf("Close dropped the queued offer: puts = %d", peer.putCount())
	}
}
