// Package replicate is the fleet side of the serve store: an HTTP
// client that exchanges program state blobs between owl-serve replicas
// so N replicas explore like one warm server.
//
// The wire format is deliberately not new: a replica serves exactly the
// bytes a CHECKPOINT file holds (persist.EncodeCheckpoint — magic plus
// one CRC-framed JSON payload), so the same validator guards the disk
// read path, the network read path, and the import. Trust follows the
// PR 9 rehydration rules: a fetched blob is used only if its key
// re-resolves and its module fingerprint matches the locally resolved
// program; anything else is discarded and the job proceeds cold. A
// peer can therefore slow a replica down or fail to help it, but never
// corrupt its analysis — and a submission NEVER fails because a peer
// is down, slow, or serving garbage.
//
// Two flows:
//
//   - Fetch: on a cold Submit miss (no memory state, no durable dir)
//     the store asks each healthy peer for the program's blob before
//     paying cold-start exploration.
//   - Offer: after a checkpoint fold (and on drain) a replica pushes
//     its newest state to every peer — anti-entropy, latest-wins. A
//     peer that already knows everything in the blob answers 409 and
//     the fleet converges.
//
// Peer health is tracked per peer: consecutive transport failures put
// a peer in a cooldown during which it is skipped entirely, so one
// dead peer costs each cold miss at most a few timeouts, not every
// one. Deterministic network faults (net-down, net-slow, net-truncate,
// net-flip) inject through an optional faultinject.Plan keyed by
// operation name and per-(peer, op, key) request sequence.
package replicate

import (
	"bytes"
	"compress/gzip"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/conanalysis/owl/internal/faultinject"
	"github.com/conanalysis/owl/internal/metrics"
	"github.com/conanalysis/owl/internal/serve/persist"
)

// MaxBlobBytes bounds a state blob on the wire in either direction.
// Matches the persist layer's frame bound: anything larger is not a
// state blob.
const MaxBlobBytes = 64 << 20

// Config tunes a Replicator. Zero values select the defaults noted on
// each field.
type Config struct {
	// Peers is the base URLs of the other replicas (e.g.
	// "http://replica-2:8080"). Empty disables replication entirely.
	Peers []string
	// Timeout bounds each individual peer request (default 2s).
	Timeout time.Duration
	// Retries is how many times a transport-failed request is retried
	// against the same peer before moving on (default 1).
	Retries int
	// Backoff is the sleep before each retry (default 50ms).
	Backoff time.Duration
	// CoolDown is how long a peer is skipped after downAfter consecutive
	// failures (default 5s).
	CoolDown time.Duration
	// Client issues the requests (default a fresh http.Client; tests and
	// the in-process loadgen install handler-backed transports here).
	Client *http.Client
	// Faults, when non-nil, injects deterministic network faults at the
	// replicate.* operation points.
	Faults *faultinject.Plan
	// Metrics receives the serve.replica_* counters (nil-safe).
	Metrics *metrics.Collector
}

// downAfter is the consecutive-failure count that trips a peer into
// cooldown.
const downAfter = 3

func (c Config) withDefaults() Config {
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 1
	}
	if c.Backoff <= 0 {
		c.Backoff = 50 * time.Millisecond
	}
	if c.CoolDown <= 0 {
		c.CoolDown = 5 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

type peer struct {
	url       string
	fails     int       // consecutive transport failures
	downUntil time.Time // skipped until then
}

// Replicator exchanges state blobs with a fixed peer set. Fetch is
// synchronous (it sits on the cold-miss path, outside the store
// mutex); Offer is asynchronous — offers queue latest-wins per key and
// one background goroutine pushes them so a slow peer never blocks a
// job's completion path.
type Replicator struct {
	cfg Config
	mc  *metrics.Collector

	mu       sync.Mutex
	cond     *sync.Cond
	peers    []*peer
	seq      map[string]int    // (peer|op|key) -> next fault-injection sequence
	order    []string          // FIFO of keys with a pending offer
	pending  map[string][]byte // key -> latest offered blob
	inflight bool              // worker mid-push
	closed   bool

	wg sync.WaitGroup
}

// New builds a Replicator and starts its push worker. Returns nil when
// cfg.Peers is empty — a nil *Replicator is valid and inert, so call
// sites thread an optional replicator without guards.
func New(cfg Config) *Replicator {
	if len(cfg.Peers) == 0 {
		return nil
	}
	cfg = cfg.withDefaults()
	r := &Replicator{
		cfg:     cfg,
		mc:      cfg.Metrics,
		seq:     make(map[string]int),
		pending: make(map[string][]byte),
	}
	r.cond = sync.NewCond(&r.mu)
	for _, u := range cfg.Peers {
		r.peers = append(r.peers, &peer{url: u})
	}
	r.mc.Gauge("serve.replica_peers", float64(len(r.peers)))
	r.wg.Add(1)
	go r.worker()
	return r
}

// Enabled reports whether replication is configured.
func (r *Replicator) Enabled() bool { return r != nil }

// netSeq returns the next fault-injection sequence for (peer, op, key).
// Keying by all three keeps fault decisions deterministic even when
// requests for different programs interleave.
func (r *Replicator) netSeq(peerURL, op, key string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := peerURL + "|" + op + "|" + key
	n := r.seq[k]
	r.seq[k] = n + 1
	return n
}

// healthy snapshots the peers currently worth talking to.
func (r *Replicator) healthy() []*peer {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*peer, 0, len(r.peers))
	for _, p := range r.peers {
		if now.Before(p.downUntil) {
			continue
		}
		out = append(out, p)
	}
	return out
}

func (r *Replicator) peerFailed(p *peer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p.fails++
	if p.fails >= downAfter {
		p.downUntil = time.Now().Add(r.cfg.CoolDown)
		p.fails = 0
		r.mc.Count("serve.replica_peer_down", 1)
	}
}

func (r *Replicator) peerOK(p *peer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p.fails = 0
}

// Fetch asks each healthy peer in order for key's state blob and
// returns the first one that validates, or nil — a nil return (peers
// down, no peer has the program, every blob damaged) means "proceed
// cold" and is never an error the caller must handle. The returned
// checkpoint is decoded and CRC-verified but NOT trust-checked: the
// caller still owes the key re-resolution and fingerprint match before
// importing it.
func (r *Replicator) Fetch(ctx context.Context, key string) *persist.Checkpoint {
	if r == nil {
		return nil
	}
	for _, p := range r.healthy() {
		ck, err := r.fetchFrom(ctx, p, key)
		if err != nil {
			r.mc.Count("serve.replica_fetch_errors", 1)
			continue
		}
		if ck != nil {
			return ck
		}
	}
	r.mc.Count("serve.replica_fetch_misses", 1)
	return nil
}

// fetchFrom GETs key's blob from one peer, retrying transport failures.
// (nil, nil) means the peer answered cleanly but has nothing (404).
func (r *Replicator) fetchFrom(ctx context.Context, p *peer, key string) (*persist.Checkpoint, error) {
	url := p.url + "/v1/programs/" + key + "/state"
	var lastErr error
	for attempt := 0; attempt <= r.cfg.Retries; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(r.cfg.Backoff):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		r.mc.Count("serve.replica_fetch_attempts", 1)
		body, status, err := r.do(ctx, p, "replicate.get", key, func(rctx context.Context) (*http.Request, error) {
			req, err := http.NewRequestWithContext(rctx, http.MethodGet, url, nil)
			if err != nil {
				return nil, err
			}
			req.Header.Set("Accept-Encoding", "gzip")
			return req, nil
		})
		if err != nil {
			lastErr = err
			continue // transport failure: retry this peer
		}
		switch {
		case status == http.StatusOK:
			ck, err := persist.DecodeCheckpoint(body)
			if err != nil {
				// Damaged blob (torn proxy, bit rot): the peer answered, so
				// this is not a health failure, but the bytes are unusable.
				r.peerOK(p)
				return nil, err
			}
			if ck.Key != key {
				r.peerOK(p)
				return nil, fmt.Errorf("replicate: peer %s served key %.12s, asked for %.12s", p.url, ck.Key, key)
			}
			r.peerOK(p)
			return &ck, nil
		case status == http.StatusNotFound:
			r.peerOK(p)
			return nil, nil
		default:
			lastErr = fmt.Errorf("replicate: peer %s: status %d", p.url, status)
		}
	}
	r.peerFailed(p)
	return nil, lastErr
}

// do issues one fault-injected request and returns the (fault-injected)
// body bytes and status. Network faults apply in two places: the
// request point (op) can fail the call before it leaves or stall it,
// and the body point (op+".body") can truncate or flip the bytes that
// "arrived".
func (r *Replicator) do(ctx context.Context, p *peer, op, key string, build func(context.Context) (*http.Request, error)) ([]byte, int, error) {
	rctx, cancel := context.WithTimeout(ctx, r.cfg.Timeout)
	defer cancel()
	if f := r.cfg.Faults.Net(op, r.netSeq(p.url, op, key)); f != nil {
		switch f.Kind {
		case faultinject.KindNetDown:
			return nil, 0, f
		case faultinject.KindNetSlow:
			// The stall counts against the request timeout, exactly like
			// a peer that is slow on the wire: a delay longer than
			// cfg.Timeout turns into a transport failure.
			select {
			case <-time.After(time.Duration(f.DelayMS) * time.Millisecond):
			case <-rctx.Done():
				return nil, 0, rctx.Err()
			}
		}
	}
	req, err := build(rctx)
	if err != nil {
		return nil, 0, err
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	reader := io.Reader(resp.Body)
	if resp.Header.Get("Content-Encoding") == "gzip" {
		gz, err := gzip.NewReader(reader)
		if err != nil {
			return nil, 0, err
		}
		defer gz.Close()
		reader = gz
	}
	body, err := io.ReadAll(io.LimitReader(reader, MaxBlobBytes+1))
	if err != nil {
		return nil, 0, err
	}
	if len(body) > MaxBlobBytes {
		return nil, 0, fmt.Errorf("replicate: peer %s: blob exceeds %d bytes", p.url, MaxBlobBytes)
	}
	if f := r.cfg.Faults.Net(op+".body", r.netSeq(p.url, op+".body", key)); f != nil {
		switch f.Kind {
		case faultinject.KindNetTruncate:
			body = body[:len(body)/2]
		case faultinject.KindNetFlip:
			if len(body) > 0 {
				bit := f.Bit % (len(body) * 8)
				if bit < 0 {
					bit += len(body) * 8
				}
				flipped := append([]byte{}, body...)
				flipped[bit/8] ^= 1 << (bit % 8)
				body = flipped
			}
		}
	}
	return body, resp.StatusCode, nil
}

// Offer enqueues key's state blob for anti-entropy push to every peer.
// Latest wins: a newer offer for the same key replaces a queued one
// (the blob is a full snapshot, not a delta, so only the newest
// matters). Never blocks on the network.
func (r *Replicator) Offer(ck persist.Checkpoint) {
	if r == nil {
		return
	}
	blob, err := persist.EncodeCheckpoint(ck)
	if err != nil {
		return
	}
	r.mc.Count("serve.replica_offers", 1)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	if _, queued := r.pending[ck.Key]; !queued {
		r.order = append(r.order, ck.Key)
	}
	r.pending[ck.Key] = blob
	r.cond.Broadcast()
}

// worker drains the offer queue, one key at a time.
func (r *Replicator) worker() {
	defer r.wg.Done()
	for {
		r.mu.Lock()
		for len(r.order) == 0 && !r.closed {
			r.cond.Wait()
		}
		if len(r.order) == 0 && r.closed {
			r.mu.Unlock()
			return
		}
		key := r.order[0]
		r.order = r.order[1:]
		blob := r.pending[key]
		delete(r.pending, key)
		r.inflight = true
		r.mu.Unlock()

		r.push(key, blob)

		r.mu.Lock()
		r.inflight = false
		r.cond.Broadcast()
		r.mu.Unlock()
	}
}

// push PUTs one blob to every healthy peer. 409 means the peer already
// knew everything in the blob (stale offer — the fleet has converged
// on this program); other rejections mean the peer refused the blob's
// identity; neither is a transport failure.
func (r *Replicator) push(key string, blob []byte) {
	for _, p := range r.healthy() {
		url := p.url + "/v1/programs/" + key + "/state"
		ok := false
		for attempt := 0; attempt <= r.cfg.Retries; attempt++ {
			if attempt > 0 {
				time.Sleep(r.cfg.Backoff)
			}
			_, status, err := r.do(context.Background(), p, "replicate.put", key, func(rctx context.Context) (*http.Request, error) {
				req, err := http.NewRequestWithContext(rctx, http.MethodPut, url, bytes.NewReader(blob))
				if err != nil {
					return nil, err
				}
				req.Header.Set("Content-Type", "application/octet-stream")
				return req, nil
			})
			if err != nil {
				continue
			}
			switch {
			case status == http.StatusOK || status == http.StatusNoContent:
				r.mc.Count("serve.replica_push_ok", 1)
			case status == http.StatusConflict:
				r.mc.Count("serve.replica_push_stale", 1)
			default:
				r.mc.Count("serve.replica_push_rejected", 1)
			}
			ok = true
			break
		}
		if !ok {
			r.mc.Count("serve.replica_push_errors", 1)
			r.peerFailed(p)
			continue
		}
		r.peerOK(p)
	}
}

// Flush blocks until every queued offer has been pushed (or ctx
// expires) — the drain path, so a shutdown's final anti-entropy sweep
// actually reaches the fleet.
func (r *Replicator) Flush(ctx context.Context) error {
	if r == nil {
		return nil
	}
	for {
		r.mu.Lock()
		idle := len(r.order) == 0 && !r.inflight
		closed := r.closed
		r.mu.Unlock()
		if idle || closed {
			return nil
		}
		select {
		case <-ctx.Done():
			// The queue keeps draining in the background regardless.
			return ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// Close stops the push worker after the queue drains. The replicator
// must not be used afterwards.
func (r *Replicator) Close() {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.cond.Broadcast()
	r.mu.Unlock()
	r.wg.Wait()
}
