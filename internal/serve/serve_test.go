package serve

import (
	"context"
	"errors"
	"regexp"
	"testing"
	"time"

	"github.com/conanalysis/owl/internal/metrics"
	"github.com/conanalysis/owl/internal/owl"
	"github.com/conanalysis/owl/internal/report"
)

// libsafeSpec is the canonical resume-eligible submission the tests
// reuse: coverage exploration at a budget comfortably above the
// saturation floor (2 dry rounds x 6 runs), so a warm resume has room
// to stop strictly early.
func libsafeSpec(tenant string) Spec {
	return Spec{
		Tenant:   tenant,
		Workload: "libsafe",
		Options:  SpecOptions{Explore: "coverage", Budget: 24, Seed: 7, Workers: 2},
	}
}

// mustNew builds a server, failing the test on a config error (only an
// unusable state dir produces one).
func mustNew(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// gateRunJob swaps the server's job runner for one that blocks until
// release is closed, then runs the real pipeline. Jobs admitted while
// the gate is closed stay "in flight" deterministically.
func gateRunJob(s *Server) (release func()) {
	ch := make(chan struct{})
	s.mu.Lock()
	real := s.runJob
	s.runJob = func(j *Job) {
		<-ch
		real(j)
	}
	s.mu.Unlock()
	var once bool
	return func() {
		if !once {
			once = true
			close(ch)
		}
	}
}

func waitJob(t *testing.T, j *Job) JobStatus {
	t.Helper()
	select {
	case <-j.done:
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s did not finish", j.Status().ID)
	}
	st := j.Status()
	if st.State == StateFailed {
		t.Fatalf("job %s failed: %s", st.ID, st.Error)
	}
	return st
}

func counterOf(mc *metrics.Collector, name string) int64 {
	for _, c := range mc.Snapshot().Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// TestSubmitValidation pins the rejection surface for malformed specs.
func TestSubmitValidation(t *testing.T) {
	s := mustNew(t, Config{})
	defer s.Shutdown(context.Background())
	cases := []Spec{
		{},                                   // neither workload nor program
		{Workload: "libsafe", Program: "x"},  // both
		{Workload: "nope"},                   // unknown workload
		{Workload: "libsafe", Noise: "loud"}, // bad noise
		{Program: "not oir"},                 // parse error
		{Workload: "libsafe", Inputs: []int64{1}},
		{Workload: "libsafe", Options: SpecOptions{Engine: "quantum"}},
		{Workload: "libsafe", Options: SpecOptions{Explore: "psychic"}},
		{Workload: "libsafe", Options: SpecOptions{Budget: -1}},
	}
	for i, spec := range cases {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("case %d (%+v): accepted, want validation error", i, spec)
		} else if rej := new(ErrRejected); errors.As(err, &rej) {
			t.Errorf("case %d: rejected with backpressure, want validation error", i)
		}
	}
}

// TestQueueBackpressure pins the 429 path: with a single shard of depth
// 1 and a gated worker, the first job occupies the queue slot and the
// second submission is rejected with ErrRejected (the HTTP layer's
// 429 + Retry-After); after the gate opens and the first job drains,
// the same submission is accepted.
func TestQueueBackpressure(t *testing.T) {
	s := mustNew(t, Config{Shards: 1, QueueDepth: 1, TenantQuota: 100})
	defer s.Shutdown(context.Background())
	release := gateRunJob(s)

	j1, err := s.Submit(libsafeSpec("a"))
	if err != nil {
		t.Fatalf("first submit: %v", err)
	}
	_, err = s.Submit(libsafeSpec("a"))
	rej := new(ErrRejected)
	if !errors.As(err, &rej) || rej.Drain {
		t.Fatalf("second submit: err = %v, want queue-full ErrRejected", err)
	}
	if got := counterOf(s.mc, "serve.jobs_rejected_queue"); got != 1 {
		t.Errorf("serve.jobs_rejected_queue = %d, want 1", got)
	}

	release()
	waitJob(t, j1)
	j2, err := s.Submit(libsafeSpec("a"))
	if err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
	waitJob(t, j2)
}

// TestTenantQuota pins per-tenant admission: a tenant at its quota is
// rejected while another tenant still gets in.
func TestTenantQuota(t *testing.T) {
	s := mustNew(t, Config{Shards: 1, QueueDepth: 100, TenantQuota: 2})
	defer s.Shutdown(context.Background())
	release := gateRunJob(s)

	var jobs []*Job
	for i := 0; i < 2; i++ {
		j, err := s.Submit(libsafeSpec("greedy"))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	_, err := s.Submit(libsafeSpec("greedy"))
	rej := new(ErrRejected)
	if !errors.As(err, &rej) || rej.Drain {
		t.Fatalf("over-quota submit: err = %v, want quota ErrRejected", err)
	}
	if got := counterOf(s.mc, "serve.jobs_rejected_quota"); got != 1 {
		t.Errorf("serve.jobs_rejected_quota = %d, want 1", got)
	}
	// Another tenant is unaffected.
	j, err := s.Submit(libsafeSpec("patient"))
	if err != nil {
		t.Fatalf("other-tenant submit: %v", err)
	}
	jobs = append(jobs, j)

	release()
	for _, j := range jobs {
		waitJob(t, j)
	}
	// Quota released: the greedy tenant can submit again.
	j, err = s.Submit(libsafeSpec("greedy"))
	if err != nil {
		t.Fatalf("post-completion submit: %v", err)
	}
	waitJob(t, j)
}

// TestGracefulDrain pins shutdown semantics: jobs accepted before the
// drain run to completion, submissions during the drain are rejected
// with the Drain flag (the HTTP layer's 503), and Shutdown returns once
// the queues are dry.
func TestGracefulDrain(t *testing.T) {
	s := mustNew(t, Config{Shards: 2, QueueDepth: 8})
	release := gateRunJob(s)

	var jobs []*Job
	for i := 0; i < 3; i++ {
		j, err := s.Submit(libsafeSpec("a"))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()

	// Draining starts as soon as Shutdown flips the flag; poll for it,
	// then check the rejection path.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		d := s.draining
		s.mu.Unlock()
		if d {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("drain flag never set")
		}
		time.Sleep(time.Millisecond)
	}
	_, err := s.Submit(libsafeSpec("a"))
	rej := new(ErrRejected)
	if !errors.As(err, &rej) || !rej.Drain {
		t.Fatalf("submit during drain: err = %v, want drain ErrRejected", err)
	}

	release()
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for _, j := range jobs {
		st := waitJob(t, j)
		if st.Result == nil {
			t.Errorf("job %s drained without a result", st.ID)
		}
	}
	if got := counterOf(s.mc, "serve.jobs_completed"); got != 3 {
		t.Errorf("serve.jobs_completed = %d, want 3 (drain must finish in-flight jobs)", got)
	}
}

// TestCrossSubmissionResume is the tentpole acceptance gate: a repeat
// submission of the same program resumes the accumulated exploration —
// serve.resume_hits goes positive, strictly fewer schedules execute at
// equal budget, and a third submission repeats the second's count
// exactly (the determinism the serve-gate CI job re-runs under -race).
func TestCrossSubmissionResume(t *testing.T) {
	s := mustNew(t, Config{Shards: 4, SnapEntries: 64})
	defer s.Shutdown(context.Background())

	run := func() *JobResult {
		j, err := s.Submit(libsafeSpec("a"))
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		st := waitJob(t, j)
		if st.Result == nil {
			t.Fatal("done job has no result")
		}
		return st.Result
	}

	first := run()
	if first.Submissions != 1 || first.StoreReports != first.RawReports {
		t.Errorf("first result accounting off: %+v", first)
	}
	if counterOf(s.mc, "serve.resume_hits") != 0 {
		t.Error("first submission counted as a resume hit")
	}

	second := run()
	if counterOf(s.mc, "serve.resume_hits") == 0 {
		t.Error("serve.resume_hits = 0 after repeat submission, want > 0")
	}
	if second.ExecutedSchedules >= first.ExecutedSchedules {
		t.Errorf("resumed submission executed %d schedules, want strictly fewer than %d",
			second.ExecutedSchedules, first.ExecutedSchedules)
	}
	if second.NewReports != 0 {
		t.Errorf("resumed submission found %d new reports, want 0 (same program, same space)", second.NewReports)
	}
	if second.Submissions != 2 {
		t.Errorf("submissions = %d, want 2", second.Submissions)
	}

	third := run()
	if third.ExecutedSchedules != second.ExecutedSchedules {
		t.Errorf("third submission executed %d schedules, want %d (resume determinism)",
			third.ExecutedSchedules, second.ExecutedSchedules)
	}

	progs := s.Programs()
	if len(progs) != 1 {
		t.Fatalf("store has %d programs, want 1", len(progs))
	}
	if progs[0].Explorations != 3 || progs[0].Submissions != 3 {
		t.Errorf("program info = %+v, want explorations=3 submissions=3", progs[0])
	}
}

// normalizeTiming blanks the one wall-clock line in the summary
// (static analysis time) — it differs between any two runs, including
// two cmd/owl invocations of the same options.
var timingLine = regexp.MustCompile(`(?m)^(static analysis time:\s*).*$`)

func normalizeTiming(s string) string {
	return timingLine.ReplaceAllString(s, "${1}X")
}

// TestSummaryMatchesCmdOwl is the parity gate: a submitted job's
// SummaryText must be byte-identical to what cmd/owl prints for the
// same program and options, modulo the wall-clock timing line —
// cmd/owl's summary IS report.Text (see cmd/owl/main.go), so the
// comparison runs the pipeline directly with the spec's translated
// options.
func TestSummaryMatchesCmdOwl(t *testing.T) {
	specs := []Spec{
		libsafeSpec("a"),
		{Workload: "apache", Options: SpecOptions{Explore: "fixed", Runs: 8, Workers: 2}},
	}
	for _, spec := range specs {
		s := mustNew(t, Config{Shards: 1})
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatalf("%s: submit: %v", spec.Workload, err)
		}
		st := waitJob(t, j)
		s.Shutdown(context.Background())

		prog, name, _, err := resolve(spec)
		if err != nil {
			t.Fatal(err)
		}
		engine, mode, err := spec.Options.validate()
		if err != nil {
			t.Fatal(err)
		}
		runs := spec.Options.Runs
		if runs <= 0 {
			runs = 8
		}
		workers := spec.Options.Workers
		if workers <= 0 {
			workers = 1
		}
		res, err := owl.Run(prog, owl.Options{
			Engine: engine, DetectRuns: runs, Explore: mode,
			Budget: spec.Options.Budget, Seed: spec.Options.Seed,
			SnapCache: spec.Options.SnapCache, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := report.Text(name, res)
		if normalizeTiming(st.Result.SummaryText) != normalizeTiming(want) {
			t.Errorf("%s: summary diverged from cmd/owl output:\n--- serve ---\n%s\n--- cmd/owl ---\n%s",
				spec.Workload, st.Result.SummaryText, want)
		}
	}
}

// TestInlineProgramSubmission covers the -file analogue: an inline .oir
// module analyzes end to end, and resubmitting the identical source
// resumes (shared content hash) while a one-byte change gets fresh
// state.
func TestInlineProgramSubmission(t *testing.T) {
	const src = `
global @x = 0

func @worker() {
entry:
  store 1, @x
  ret 0
}
func @main() {
entry:
  %t = call @spawn(@worker)
  %v = load @x
  %r = call @join(%t)
  ret 0
}
`
	s := mustNew(t, Config{Shards: 2})
	defer s.Shutdown(context.Background())
	spec := Spec{Program: src, Options: SpecOptions{Explore: "coverage", Budget: 24, Seed: 3}}

	j1, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st1 := waitJob(t, j1)
	if st1.Result.RawReports == 0 {
		t.Error("racy inline program produced no raw reports")
	}

	j2, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st2 := waitJob(t, j2)
	if st1.Key != st2.Key {
		t.Error("identical source hashed to different keys")
	}
	if !st2.Resume {
		t.Error("identical resubmission did not resume")
	}

	variant := spec
	variant.Program = src + "\n"
	j3, err := s.Submit(variant)
	if err != nil {
		t.Fatal(err)
	}
	st3 := waitJob(t, j3)
	if st3.Key == st1.Key {
		t.Error("changed source reused the original key")
	}
	if st3.Resume {
		t.Error("changed source resumed foreign state")
	}
	if s.store.len() != 2 {
		t.Errorf("store has %d programs, want 2", s.store.len())
	}
}
