package serve

import (
	"sort"
	"sync"

	"github.com/conanalysis/owl/internal/owl"
	"github.com/conanalysis/owl/internal/sched"
)

// programState is everything the service accumulates for one program
// content-hash key. The resolved owl.Program is pinned here on first
// submission and reused verbatim by every later one: coverage keys are
// *ir.Instr identities, so the ExploreState is only meaningful against
// the exact module value it was built from (the workload registry
// builds a fresh module per Get call — re-resolving would silently
// orphan the accumulated coverage).
//
// Only one shard goroutine ever *mutates* a given programState (keys
// route to shards by hash), but the programs endpoint scrapes all of
// them concurrently, so the mutable accounting sits behind mu. The
// ExploreState carries its own lock.
type programState struct {
	key  string
	name string
	prog owl.Program

	state *sched.ExploreState

	mu sync.Mutex
	// reports dedups raw race reports by ID across submissions; order
	// keeps first-seen order for deterministic listings.
	reports     map[string]bool
	order       []string
	submissions int
}

// absorbRun records a completed run: its raw report IDs (returning how
// many were new to the store) and the submission count.
func (ps *programState) absorbRun(res *owl.Result) (fresh, known, total, submissions int) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for _, r := range res.Raw {
		id := r.ID()
		if ps.reports[id] {
			known++
			continue
		}
		ps.reports[id] = true
		ps.order = append(ps.order, id)
		fresh++
	}
	ps.submissions++
	return fresh, known, len(ps.reports), ps.submissions
}

// store maps content-hash keys to accumulated program state.
type store struct {
	mu          sync.Mutex
	programs    map[string]*programState
	snapEntries int
}

func newStore(snapEntries int) *store {
	return &store{programs: make(map[string]*programState), snapEntries: snapEntries}
}

// get returns the state for key, creating (and pinning prog under it) on
// first sight. The boolean reports whether the key already existed.
func (s *store) get(key, name string, prog owl.Program) (*programState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ps, ok := s.programs[key]; ok {
		return ps, true
	}
	ps := &programState{
		key:     key,
		name:    name,
		prog:    prog,
		state:   sched.NewExploreState(s.snapEntries),
		reports: make(map[string]bool),
	}
	s.programs[key] = ps
	return ps, false
}

// len returns the number of distinct programs the store has seen.
func (s *store) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.programs)
}

// ProgramInfo is the wire summary of one stored program.
type ProgramInfo struct {
	Key         string `json:"key"`
	Name        string `json:"name"`
	Submissions int    `json:"submissions"`
	// Explorations/Pairs/Reports describe the accumulated ExploreState:
	// absorbed coverage explorations, distinct coverage pairs, and
	// deduplicated raw reports.
	Explorations int `json:"explorations"`
	Pairs        int `json:"pairs"`
	Reports      int `json:"reports"`
}

// list snapshots the store for the programs endpoint, sorted by key for
// a deterministic listing. Counts read through the ExploreState's own
// mutex-guarded accessors, so a concurrent job run on another shard
// cannot race the scrape.
func (s *store) list() []ProgramInfo {
	s.mu.Lock()
	states := make([]*programState, 0, len(s.programs))
	for _, ps := range s.programs {
		states = append(states, ps)
	}
	s.mu.Unlock()
	out := make([]ProgramInfo, 0, len(states))
	for _, ps := range states {
		ps.mu.Lock()
		subs, nRep := ps.submissions, len(ps.reports)
		ps.mu.Unlock()
		out = append(out, ProgramInfo{
			Key:          ps.key,
			Name:         ps.name,
			Submissions:  subs,
			Explorations: ps.state.Explorations(),
			Pairs:        ps.state.Pairs(),
			Reports:      nRep,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
