package serve

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"github.com/conanalysis/owl/internal/metrics"
	"github.com/conanalysis/owl/internal/owl"
	"github.com/conanalysis/owl/internal/sched"
	"github.com/conanalysis/owl/internal/serve/persist"
	"github.com/conanalysis/owl/internal/serve/replicate"
)

// programState is everything the service accumulates for one program
// content-hash key. The resolved owl.Program is pinned here on first
// submission and reused verbatim by every later one: coverage keys are
// *ir.Instr identities, so the ExploreState is only meaningful against
// the exact module value it was built from (the workload registry
// builds a fresh module per Get call — re-resolving would silently
// orphan the accumulated coverage).
//
// Only one shard goroutine ever *mutates* a given programState (keys
// route to shards by hash), but the programs endpoint scrapes all of
// them concurrently, so the mutable accounting sits behind mu. The
// ExploreState carries its own lock.
type programState struct {
	key  string
	name string
	prog owl.Program

	state *sched.ExploreState

	// source and fp are the persisted identity: the spec fields the key
	// hashes and the module fingerprint rehydration verifies.
	source persist.ProgramSource
	fp     string

	// log is the program's durability handle (nil when persistence is
	// off or permanently failed for this program). pmu serializes the
	// per-job persistence path (TakeDelta+Append) against checkpoint
	// composition so a checkpoint never snapshots a half-recorded job.
	log *persist.Log
	pmu sync.Mutex

	// inflight and lastUsed are eviction bookkeeping, guarded by the
	// store's mutex: inflight counts queued+running jobs (an evicted
	// program must have none), lastUsed is the store's monotonic use
	// tick (LRU order).
	inflight int
	lastUsed int64

	mu sync.Mutex
	// reports dedups raw race reports by ID across submissions; order
	// keeps first-seen order for deterministic listings.
	reports     map[string]bool
	order       []string
	submissions int
}

// absorbRun records a completed run: its raw report IDs (returning the
// IDs that were new to the store, in first-seen order) and the
// submission count.
func (ps *programState) absorbRun(res *owl.Result) (freshIDs []string, known, total, submissions int) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for _, r := range res.Raw {
		id := r.ID()
		if ps.reports[id] {
			known++
			continue
		}
		ps.reports[id] = true
		ps.order = append(ps.order, id)
		freshIDs = append(freshIDs, id)
	}
	ps.submissions++
	return freshIDs, known, len(ps.reports), ps.submissions
}

// store maps content-hash keys to accumulated program state. With a
// persist store attached it is also the cache layer over the state
// directory: misses rehydrate from disk, and exceeding maxPrograms
// evicts the least-recently-used cold program (whose durable state, if
// any, stays on disk for the next touch).
type store struct {
	mu          sync.Mutex
	programs    map[string]*programState
	pending     map[string]chan struct{} // keys whose create/reopen disk I/O is in flight
	snapEntries int
	maxPrograms int
	tick        int64
	mc          *metrics.Collector
	pstore      *persist.Store        // nil = persistence off
	rep         *replicate.Replicator // nil = replication off
}

// acquireOutcome reports how acquire obtained a program's state.
type acquireOutcome int

const (
	// acqMemory: the key was already live in the program map.
	acqMemory acquireOutcome = iota
	// acqReopened: rehydrated from this replica's own durable state.
	acqReopened
	// acqImported: built from a peer blob (Fetch on a cold miss, or the
	// seed checkpoint of a PUT offer). New to this replica.
	acqImported
	// acqFresh: created cold, no prior state anywhere.
	acqFresh
)

// known reports whether the program already existed locally — the
// Submit-side "existed" notion. Peer-imported programs are NOT known:
// they are new entries this store just learned about, and the caller
// counts them into serve.store_programs like any other first sight.
func (o acquireOutcome) known() bool { return o == acqMemory || o == acqReopened }

func newStore(snapEntries, maxPrograms int, mc *metrics.Collector) *store {
	return &store{
		programs:    make(map[string]*programState),
		pending:     make(map[string]chan struct{}),
		snapEntries: snapEntries,
		maxPrograms: maxPrograms,
		mc:          mc,
	}
}

// acquire returns the state for key with its inflight count already
// raised — the caller owes exactly one release (directly on admission
// failure, or via Server.finish when the job completes). On a miss it
// first tries to rehydrate the program from disk, then creates it
// fresh (laying down its initial checkpoint when persistence is on).
// The boolean reports whether the key already existed in memory or on
// disk.
//
// The miss path does disk I/O (checkpoint create, or WAL replay on
// reopen) and must not hold the store mutex across those fsyncs — one
// slow disk would serialize every Submit on every shard. A per-key
// pending slot keeps the mutex to map mutation only: the first caller
// for a cold key claims the slot and materializes off-lock, later
// callers for the same key wait on the slot and re-check the map;
// callers for other keys are never blocked.
func (s *store) acquire(key, name string, prog owl.Program, src persist.ProgramSource) (*programState, bool) {
	ps, outcome := s.acquireSeeded(key, name, prog, src, nil, true)
	return ps, outcome.known()
}

// acquireSeeded is acquire with the replication hooks exposed: seed,
// when non-nil, is a peer-offered checkpoint to build a missing program
// from (already identity-verified by the caller), and allowPeer gates
// the cold-miss peer fetch (the PUT offer path must not re-fetch from
// the peer that is pushing to us).
func (s *store) acquireSeeded(key, name string, prog owl.Program, src persist.ProgramSource, seed *persist.Checkpoint, allowPeer bool) (*programState, acquireOutcome) {
	var gate chan struct{}
	for {
		s.mu.Lock()
		if ps, ok := s.programs[key]; ok {
			s.touchLocked(ps)
			s.mu.Unlock()
			return ps, acqMemory
		}
		ch, busy := s.pending[key]
		if !busy {
			gate = make(chan struct{})
			s.pending[key] = gate
			s.mu.Unlock()
			break
		}
		s.mu.Unlock()
		<-ch
	}

	ps, outcome := s.materialize(key, name, prog, src, seed, allowPeer)

	s.mu.Lock()
	// Pin before inserting: insertLocked's eviction sweep (and any
	// concurrent one) must never victimize a program whose first job is
	// still queued or running — eviction closes the log, which would
	// silently drop the job's durable delta. The caller's one owed
	// release balances this pin.
	ps.inflight = 1
	s.insertLocked(ps)
	delete(s.pending, key)
	s.mu.Unlock()
	close(gate)
	return ps, outcome
}

// pin returns the live in-memory state for key with its inflight count
// raised (so eviction cannot victimize it while the caller reads it),
// or nil when the key is not in memory. The caller owes one release.
// This is the state-serving endpoint's handle: it never materializes —
// serving a peer must not fault a cold program into memory.
func (s *store) pin(key string) *programState {
	s.mu.Lock()
	defer s.mu.Unlock()
	ps, ok := s.programs[key]
	if !ok {
		return nil
	}
	s.touchLocked(ps)
	return ps
}

// materialize builds the in-memory state for a key that is not in the
// store, in warmth order: rehydrate from this replica's own disk, else
// import the seed checkpoint (offer path) or a peer-fetched blob (cold
// miss with replication on), else create fresh. A blob that fails
// identity or state validation is discarded and the cold path proceeds
// — a bad peer can cost warmth, never a job. Runs outside the store
// mutex; the caller holds key's pending slot, so exactly one goroutine
// materializes a given key at a time.
func (s *store) materialize(key, name string, prog owl.Program, src persist.ProgramSource, seed *persist.Checkpoint, allowPeer bool) (*programState, acquireOutcome) {
	if ps := s.reopen(key, name, prog); ps != nil {
		return ps, acqReopened
	}
	ck, fetched := seed, false
	if ck == nil && allowPeer && s.rep.Enabled() {
		ck = s.rep.Fetch(context.Background(), key)
		fetched = ck != nil
	}
	if ck != nil {
		if ps, err := s.importCheckpoint(ck, name, prog); err == nil {
			if fetched {
				s.mc.Count("serve.replica_fetch_hits", 1)
			}
			return ps, acqImported
		}
		s.mc.Count("serve.replica_discarded", 1)
	}
	ps := &programState{
		key:     key,
		name:    name,
		prog:    prog,
		state:   sched.NewExploreState(s.snapEntries),
		reports: make(map[string]bool),
		source:  src,
		// The fingerprint is always computed (it is cached on the
		// module, one hash per program first-sight): the state endpoint
		// serves blobs whether or not persistence is on, and a blob
		// without a fingerprint could never be trusted by a peer.
		fp: prog.Module.Fingerprint(),
	}
	if s.pstore != nil {
		log, err := s.pstore.Create(persist.Checkpoint{
			Key:      key,
			Name:     name,
			Source:   src,
			ModuleFP: ps.fp,
			State:    ps.state.Export(),
		})
		if err != nil {
			s.mc.Count("serve.persist_errors", 1)
		} else {
			ps.log = log
			ps.state.SetJournal(true)
		}
	}
	return ps, acqFresh
}

// importCheckpoint builds a live programState from a peer's blob under
// the same refuse-to-guess contract as disk rehydration: the module
// fingerprint must match the locally resolved program and every stable
// coverage position must resolve, or the blob is rejected. On success
// with persistence on, the imported state is laid down durably right
// away — warmth bought from a peer should survive a restart too.
func (s *store) importCheckpoint(ck *persist.Checkpoint, name string, prog owl.Program) (*programState, error) {
	fp := prog.Module.Fingerprint()
	if ck.ModuleFP != fp {
		return nil, fmt.Errorf("module fingerprint %.12s does not match blob %.12s", fp, ck.ModuleFP)
	}
	state := sched.NewExploreState(s.snapEntries)
	if err := state.Import(prog.Module, ck.State); err != nil {
		return nil, err
	}
	ps := &programState{
		key:         ck.Key,
		name:        name,
		prog:        prog,
		state:       state,
		reports:     make(map[string]bool, len(ck.Reports)),
		submissions: ck.Submissions,
		source:      ck.Source,
		fp:          fp,
	}
	for _, id := range ck.Reports {
		if !ps.reports[id] {
			ps.reports[id] = true
			ps.order = append(ps.order, id)
		}
	}
	if s.pstore != nil {
		dck := *ck
		dck.Name = name
		log, err := s.pstore.Create(dck)
		if err != nil {
			s.mc.Count("serve.persist_errors", 1)
		} else {
			ps.log = log
			ps.state.SetJournal(true)
		}
	}
	return ps, nil
}

// reopen lazily rehydrates an evicted program's durable state. Damaged
// or mismatched state is discarded (quarantined + counted) and nil is
// returned so the caller starts fresh.
func (s *store) reopen(key, name string, prog owl.Program) *programState {
	if s.pstore == nil {
		return nil
	}
	rec, err := s.pstore.Reopen(key)
	if err != nil || rec == nil {
		return nil
	}
	ps, err := buildProgramState(rec, name, prog, s.snapEntries)
	if err != nil {
		rec.Log.Close()
		s.discard(key)
		return nil
	}
	return ps
}

// insert adds a rehydrated program (boot path).
func (s *store) insert(ps *programState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.insertLocked(ps)
}

func (s *store) insertLocked(ps *programState) {
	s.tick++
	ps.lastUsed = s.tick
	s.programs[ps.key] = ps
	s.evictLocked()
}

func (s *store) touchLocked(ps *programState) {
	s.tick++
	ps.lastUsed = s.tick
	ps.inflight++
}

// release drops one inflight reference (job finished or admission
// failed).
func (s *store) release(ps *programState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ps.inflight > 0 {
		ps.inflight--
	}
}

// evictLocked enforces maxPrograms by dropping the least-recently-used
// programs with no jobs in flight. With persistence on, an evicted
// program's state survives on disk (every job was WAL-appended before
// its terminal status published) and rehydrates on the next touch;
// without, eviction deliberately forgets the accumulated state —
// bounded memory beats unbounded resume.
func (s *store) evictLocked() {
	for s.maxPrograms > 0 && len(s.programs) > s.maxPrograms {
		var victim *programState
		for _, ps := range s.programs {
			if ps.inflight > 0 {
				continue
			}
			if victim == nil || ps.lastUsed < victim.lastUsed {
				victim = ps
			}
		}
		if victim == nil {
			return // everything is hot; stay over budget rather than lose live state
		}
		delete(s.programs, victim.key)
		if victim.log != nil {
			victim.log.Close()
			victim.log = nil
		}
		s.mc.Count("serve.programs_evicted", 1)
	}
}

// discard quarantines a program's on-disk state (rehydration refused
// it) and counts the loss. It touches only the persist store, never the
// program map, so it takes no store lock — the rename it performs is
// disk I/O that must not block Submit admission.
func (s *store) discard(key string) {
	if s.pstore != nil {
		s.pstore.Quarantine(key)
	}
	s.mc.Count("serve.persist_discarded", 1)
}

// all snapshots the live program states (drain-time checkpoint sweep).
func (s *store) all() []*programState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*programState, 0, len(s.programs))
	for _, ps := range s.programs {
		out = append(out, ps)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// len returns the number of distinct programs currently in memory.
func (s *store) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.programs)
}

// ProgramInfo is the wire summary of one stored program.
type ProgramInfo struct {
	Key         string `json:"key"`
	Name        string `json:"name"`
	Submissions int    `json:"submissions"`
	// Explorations/Pairs/Reports describe the accumulated ExploreState:
	// absorbed coverage explorations, distinct coverage pairs, and
	// deduplicated raw reports.
	Explorations int `json:"explorations"`
	Pairs        int `json:"pairs"`
	Reports      int `json:"reports"`
}

// list snapshots the store for the programs endpoint, sorted by key for
// a deterministic listing. Counts read through the ExploreState's own
// mutex-guarded accessors, so a concurrent job run on another shard
// cannot race the scrape.
func (s *store) list() []ProgramInfo {
	states := s.all()
	out := make([]ProgramInfo, 0, len(states))
	for _, ps := range states {
		ps.mu.Lock()
		subs, nRep := ps.submissions, len(ps.reports)
		ps.mu.Unlock()
		out = append(out, ProgramInfo{
			Key:          ps.key,
			Name:         ps.name,
			Submissions:  subs,
			Explorations: ps.state.Explorations(),
			Pairs:        ps.state.Pairs(),
			Reports:      nRep,
		})
	}
	return out
}
