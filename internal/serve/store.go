package serve

import (
	"sort"
	"sync"

	"github.com/conanalysis/owl/internal/metrics"
	"github.com/conanalysis/owl/internal/owl"
	"github.com/conanalysis/owl/internal/sched"
	"github.com/conanalysis/owl/internal/serve/persist"
)

// programState is everything the service accumulates for one program
// content-hash key. The resolved owl.Program is pinned here on first
// submission and reused verbatim by every later one: coverage keys are
// *ir.Instr identities, so the ExploreState is only meaningful against
// the exact module value it was built from (the workload registry
// builds a fresh module per Get call — re-resolving would silently
// orphan the accumulated coverage).
//
// Only one shard goroutine ever *mutates* a given programState (keys
// route to shards by hash), but the programs endpoint scrapes all of
// them concurrently, so the mutable accounting sits behind mu. The
// ExploreState carries its own lock.
type programState struct {
	key  string
	name string
	prog owl.Program

	state *sched.ExploreState

	// source and fp are the persisted identity: the spec fields the key
	// hashes and the module fingerprint rehydration verifies.
	source persist.ProgramSource
	fp     string

	// log is the program's durability handle (nil when persistence is
	// off or permanently failed for this program). pmu serializes the
	// per-job persistence path (TakeDelta+Append) against checkpoint
	// composition so a checkpoint never snapshots a half-recorded job.
	log *persist.Log
	pmu sync.Mutex

	// inflight and lastUsed are eviction bookkeeping, guarded by the
	// store's mutex: inflight counts queued+running jobs (an evicted
	// program must have none), lastUsed is the store's monotonic use
	// tick (LRU order).
	inflight int
	lastUsed int64

	mu sync.Mutex
	// reports dedups raw race reports by ID across submissions; order
	// keeps first-seen order for deterministic listings.
	reports     map[string]bool
	order       []string
	submissions int
}

// absorbRun records a completed run: its raw report IDs (returning the
// IDs that were new to the store, in first-seen order) and the
// submission count.
func (ps *programState) absorbRun(res *owl.Result) (freshIDs []string, known, total, submissions int) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for _, r := range res.Raw {
		id := r.ID()
		if ps.reports[id] {
			known++
			continue
		}
		ps.reports[id] = true
		ps.order = append(ps.order, id)
		freshIDs = append(freshIDs, id)
	}
	ps.submissions++
	return freshIDs, known, len(ps.reports), ps.submissions
}

// store maps content-hash keys to accumulated program state. With a
// persist store attached it is also the cache layer over the state
// directory: misses rehydrate from disk, and exceeding maxPrograms
// evicts the least-recently-used cold program (whose durable state, if
// any, stays on disk for the next touch).
type store struct {
	mu          sync.Mutex
	programs    map[string]*programState
	pending     map[string]chan struct{} // keys whose create/reopen disk I/O is in flight
	snapEntries int
	maxPrograms int
	tick        int64
	mc          *metrics.Collector
	pstore      *persist.Store // nil = persistence off
}

func newStore(snapEntries, maxPrograms int, mc *metrics.Collector) *store {
	return &store{
		programs:    make(map[string]*programState),
		pending:     make(map[string]chan struct{}),
		snapEntries: snapEntries,
		maxPrograms: maxPrograms,
		mc:          mc,
	}
}

// acquire returns the state for key with its inflight count already
// raised — the caller owes exactly one release (directly on admission
// failure, or via Server.finish when the job completes). On a miss it
// first tries to rehydrate the program from disk, then creates it
// fresh (laying down its initial checkpoint when persistence is on).
// The boolean reports whether the key already existed in memory or on
// disk.
//
// The miss path does disk I/O (checkpoint create, or WAL replay on
// reopen) and must not hold the store mutex across those fsyncs — one
// slow disk would serialize every Submit on every shard. A per-key
// pending slot keeps the mutex to map mutation only: the first caller
// for a cold key claims the slot and materializes off-lock, later
// callers for the same key wait on the slot and re-check the map;
// callers for other keys are never blocked.
func (s *store) acquire(key, name string, prog owl.Program, src persist.ProgramSource) (*programState, bool) {
	var gate chan struct{}
	for {
		s.mu.Lock()
		if ps, ok := s.programs[key]; ok {
			s.touchLocked(ps)
			s.mu.Unlock()
			return ps, true
		}
		ch, busy := s.pending[key]
		if !busy {
			gate = make(chan struct{})
			s.pending[key] = gate
			s.mu.Unlock()
			break
		}
		s.mu.Unlock()
		<-ch
	}

	ps, existed := s.materialize(key, name, prog, src)

	s.mu.Lock()
	// Pin before inserting: insertLocked's eviction sweep (and any
	// concurrent one) must never victimize a program whose first job is
	// still queued or running — eviction closes the log, which would
	// silently drop the job's durable delta. The caller's one owed
	// release balances this pin.
	ps.inflight = 1
	s.insertLocked(ps)
	delete(s.pending, key)
	s.mu.Unlock()
	close(gate)
	return ps, existed
}

// materialize builds the in-memory state for a key that is not in the
// store: rehydrate from disk when durable state exists, else create
// fresh (laying down the initial checkpoint when persistence is on).
// Runs outside the store mutex; the caller holds key's pending slot, so
// exactly one goroutine materializes a given key at a time.
func (s *store) materialize(key, name string, prog owl.Program, src persist.ProgramSource) (*programState, bool) {
	if ps := s.reopen(key, name, prog); ps != nil {
		return ps, true
	}
	ps := &programState{
		key:     key,
		name:    name,
		prog:    prog,
		state:   sched.NewExploreState(s.snapEntries),
		reports: make(map[string]bool),
		source:  src,
	}
	if s.pstore != nil {
		ps.fp = prog.Module.Fingerprint()
		log, err := s.pstore.Create(persist.Checkpoint{
			Key:      key,
			Name:     name,
			Source:   src,
			ModuleFP: ps.fp,
			State:    ps.state.Export(),
		})
		if err != nil {
			s.mc.Count("serve.persist_errors", 1)
		} else {
			ps.log = log
			ps.state.SetJournal(true)
		}
	}
	return ps, false
}

// reopen lazily rehydrates an evicted program's durable state. Damaged
// or mismatched state is discarded (quarantined + counted) and nil is
// returned so the caller starts fresh.
func (s *store) reopen(key, name string, prog owl.Program) *programState {
	if s.pstore == nil {
		return nil
	}
	rec, err := s.pstore.Reopen(key)
	if err != nil || rec == nil {
		return nil
	}
	ps, err := buildProgramState(rec, name, prog, s.snapEntries)
	if err != nil {
		rec.Log.Close()
		s.discard(key)
		return nil
	}
	return ps
}

// insert adds a rehydrated program (boot path).
func (s *store) insert(ps *programState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.insertLocked(ps)
}

func (s *store) insertLocked(ps *programState) {
	s.tick++
	ps.lastUsed = s.tick
	s.programs[ps.key] = ps
	s.evictLocked()
}

func (s *store) touchLocked(ps *programState) {
	s.tick++
	ps.lastUsed = s.tick
	ps.inflight++
}

// release drops one inflight reference (job finished or admission
// failed).
func (s *store) release(ps *programState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ps.inflight > 0 {
		ps.inflight--
	}
}

// evictLocked enforces maxPrograms by dropping the least-recently-used
// programs with no jobs in flight. With persistence on, an evicted
// program's state survives on disk (every job was WAL-appended before
// its terminal status published) and rehydrates on the next touch;
// without, eviction deliberately forgets the accumulated state —
// bounded memory beats unbounded resume.
func (s *store) evictLocked() {
	for s.maxPrograms > 0 && len(s.programs) > s.maxPrograms {
		var victim *programState
		for _, ps := range s.programs {
			if ps.inflight > 0 {
				continue
			}
			if victim == nil || ps.lastUsed < victim.lastUsed {
				victim = ps
			}
		}
		if victim == nil {
			return // everything is hot; stay over budget rather than lose live state
		}
		delete(s.programs, victim.key)
		if victim.log != nil {
			victim.log.Close()
			victim.log = nil
		}
		s.mc.Count("serve.programs_evicted", 1)
	}
}

// discard quarantines a program's on-disk state (rehydration refused
// it) and counts the loss. It touches only the persist store, never the
// program map, so it takes no store lock — the rename it performs is
// disk I/O that must not block Submit admission.
func (s *store) discard(key string) {
	if s.pstore != nil {
		s.pstore.Quarantine(key)
	}
	s.mc.Count("serve.persist_discarded", 1)
}

// all snapshots the live program states (drain-time checkpoint sweep).
func (s *store) all() []*programState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*programState, 0, len(s.programs))
	for _, ps := range s.programs {
		out = append(out, ps)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// len returns the number of distinct programs currently in memory.
func (s *store) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.programs)
}

// ProgramInfo is the wire summary of one stored program.
type ProgramInfo struct {
	Key         string `json:"key"`
	Name        string `json:"name"`
	Submissions int    `json:"submissions"`
	// Explorations/Pairs/Reports describe the accumulated ExploreState:
	// absorbed coverage explorations, distinct coverage pairs, and
	// deduplicated raw reports.
	Explorations int `json:"explorations"`
	Pairs        int `json:"pairs"`
	Reports      int `json:"reports"`
}

// list snapshots the store for the programs endpoint, sorted by key for
// a deterministic listing. Counts read through the ExploreState's own
// mutex-guarded accessors, so a concurrent job run on another shard
// cannot race the scrape.
func (s *store) list() []ProgramInfo {
	states := s.all()
	out := make([]ProgramInfo, 0, len(states))
	for _, ps := range states {
		ps.mu.Lock()
		subs, nRep := ps.submissions, len(ps.reports)
		ps.mu.Unlock()
		out = append(out, ProgramInfo{
			Key:          ps.key,
			Name:         ps.name,
			Submissions:  subs,
			Explorations: ps.state.Explorations(),
			Pairs:        ps.state.Pairs(),
			Reports:      nRep,
		})
	}
	return out
}
