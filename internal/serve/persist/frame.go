// Frame encoding and fault-aware disk I/O for the persistence layer.
//
// Both blob kinds share one on-disk grammar: an 8-byte magic string
// followed by frames, where a frame is a little-endian u32 payload
// length, a u32 CRC-32C of the payload, and the payload bytes. A
// checkpoint file is magic + exactly one frame; a WAL is magic + zero
// or more frames. The CRC plus the length prefix make every class of
// tail damage detectable: a torn write truncates mid-frame (length
// overruns the file), a bit flip fails the checksum, and garbage after
// a crash fails one or the other. Readers treat the first invalid frame
// as the end of the durable prefix — nothing after it is trusted.
//
// All writes and fsyncs funnel through the Store's fault-aware helpers,
// which consult an optional faultinject.Plan keyed by operation name
// and per-(program, operation) sequence number, so crash-consistency
// tests can deterministically tear, flip, and short-write exactly the
// byte ranges they mean to.
package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"github.com/conanalysis/owl/internal/faultinject"
)

const (
	ckptMagic = "OWLCKPT1"
	walMagic  = "OWLWAL01"
	magicLen  = 8
	// frameMax bounds a frame payload (a state blob for one program);
	// a length word above it is corruption, not a real frame.
	frameMax = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// encBufs pools the encode buffers behind every WAL append and
// checkpoint write. The append path runs once per completed job on a
// long-lived server; without pooling each record allocates a marshal
// buffer plus a frame buffer of checkpoint-scale size and the steady
// state churns the GC for no reason.
var encBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func getEncBuf() *bytes.Buffer {
	buf := encBufs.Get().(*bytes.Buffer)
	buf.Reset()
	return buf
}

func putEncBuf(buf *bytes.Buffer) {
	// Oversized one-off blobs (a giant checkpoint) would pin their
	// capacity in the pool forever; let those go.
	if buf.Cap() <= 4<<20 {
		encBufs.Put(buf)
	}
}

// marshalFramed JSON-encodes v directly into a pooled buffer laid out
// as one complete frame (len|crc|payload) with no intermediate copies.
// The caller must hand the buffer back via putEncBuf when the bytes
// have been written out.
func marshalFramed(v any) (*bytes.Buffer, error) {
	buf := getEncBuf()
	buf.Write(make([]byte, 8)) // frame header, filled in below
	enc := json.NewEncoder(buf)
	if err := enc.Encode(v); err != nil {
		putEncBuf(buf)
		return nil, err
	}
	buf.Truncate(buf.Len() - 1) // drop Encoder's trailing newline
	b := buf.Bytes()
	payload := b[8:]
	binary.LittleEndian.PutUint32(b[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[4:8], crc32.Checksum(payload, castagnoli))
	return buf, nil
}

// readFrame decodes the frame at data[off:]. ok is false when the bytes
// at off do not form a complete, checksummed frame — the durable prefix
// ends at off.
func readFrame(data []byte, off int) (payload []byte, next int, ok bool) {
	if off+8 > len(data) {
		return nil, off, false
	}
	n := binary.LittleEndian.Uint32(data[off : off+4])
	if n > frameMax || off+8+int(n) > len(data) {
		return nil, off, false
	}
	payload = data[off+8 : off+8+int(n)]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[off+4:off+8]) {
		return nil, off, false
	}
	return payload, off + 8 + int(n), true
}

// opSeq returns the next sequence number for (key, op) — the run index
// disk-fault rules match on.
func (s *Store) opSeq(key, op string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seq == nil {
		s.seq = make(map[string]int)
	}
	k := key + "|" + op
	n := s.seq[k]
	s.seq[k] = n + 1
	return n
}

// write appends b to f through the fault plan. A short-write fault
// writes half the buffer and reports the error (the caller truncates
// back); a torn-write fault writes half and reports success (the
// page-cache tail a crash loses); a bit-flip fault corrupts one bit and
// writes it all (the damage only a checksum catches).
func (s *Store) write(f *os.File, key, op string, b []byte) error {
	switch fault := s.opts.Faults.Disk(op, s.opSeq(key, op)); {
	case fault == nil:
		_, err := f.Write(b)
		return err
	case fault.Kind == faultinject.KindShortWrite:
		f.Write(b[:len(b)/2])
		return fault
	case fault.Kind == faultinject.KindTornWrite:
		_, err := f.Write(b[:len(b)/2])
		return err
	case fault.Kind == faultinject.KindBitFlip:
		flipped := make([]byte, len(b))
		copy(flipped, b)
		if len(flipped) > 0 {
			bit := fault.Bit % (len(flipped) * 8)
			if bit < 0 {
				bit += len(flipped) * 8
			}
			flipped[bit/8] ^= 1 << (bit % 8)
		}
		_, err := f.Write(flipped)
		return err
	default: // an fsync-error rule mistargeted at a write point: inert
		_, err := f.Write(b)
		return err
	}
}

// fsync flushes f through the fault plan.
func (s *Store) fsync(f *os.File, key, op string) error {
	if fault := s.opts.Faults.Disk(op, s.opSeq(key, op)); fault != nil && fault.Kind == faultinject.KindFsyncError {
		return fault
	}
	return f.Sync()
}

// syncDir fsyncs a directory so a just-renamed file's directory entry
// is durable.
func (s *Store) syncDir(key, dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return s.fsync(d, key, "persist.dir.fsync")
}

// writeFileAtomic writes magic+content to path via a same-directory
// temp file, fsync, rename, dir fsync — the atomic-replace idiom. op
// prefixes the fault-injection point names ("<op>.write"/"<op>.fsync").
func (s *Store) writeFileAtomic(key, op, path string, magic string, content []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	buf := getEncBuf()
	defer putEncBuf(buf)
	buf.WriteString(magic)
	buf.Write(content)
	if err := s.write(f, key, op+".write", buf.Bytes()); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := s.fsync(f, key, op+".fsync"); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return s.syncDir(key, filepath.Dir(path))
}

// readMagicFile reads a whole blob and strips its magic header.
func readMagicFile(path, magic string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < magicLen || string(data[:magicLen]) != magic {
		return nil, fmt.Errorf("persist: %s: bad magic", path)
	}
	return data[magicLen:], nil
}
