package persist

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEncodeDecodeCheckpoint: the state-exchange blob round-trips and
// is byte-identical to what Create lays down in the CHECKPOINT file —
// the wire format IS the disk format.
func TestEncodeDecodeCheckpoint(t *testing.T) {
	ck := testCheckpoint(3, 2)
	blob, err := EncodeCheckpoint(ck)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCheckpoint(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != ck.Key || got.Seq != ck.Seq || got.Submissions != ck.Submissions ||
		got.Version != Version || len(got.Reports) != len(ck.Reports) {
		t.Fatalf("round trip mismatch: %+v", got)
	}

	dir := t.TempDir()
	s, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := s.Create(ck)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	onDisk, err := os.ReadFile(filepath.Join(s.programDir(testKey), "CHECKPOINT"))
	if err != nil {
		t.Fatal(err)
	}
	if string(onDisk) != string(blob) {
		t.Fatalf("CHECKPOINT file (%d bytes) differs from EncodeCheckpoint blob (%d bytes)", len(onDisk), len(blob))
	}
}

// TestDecodeCheckpointRejectsDamage: every class of blob damage the
// replica client must survive is detected by the decoder.
func TestDecodeCheckpointRejectsDamage(t *testing.T) {
	blob, err := EncodeCheckpoint(testCheckpoint(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":       nil,
		"short":       blob[:4],
		"bad magic":   append([]byte("NOTMAGIC"), blob[magicLen:]...),
		"truncated":   blob[:len(blob)-7],
		"trailing":    append(append([]byte{}, blob...), 0xFF),
		"flipped bit": flipBit(blob, 150),
	}
	for name, data := range cases {
		if _, err := DecodeCheckpoint(data); err == nil {
			t.Errorf("%s: decode accepted damaged blob", name)
		}
	}
}

func flipBit(b []byte, bit int) []byte {
	out := append([]byte{}, b...)
	out[bit/8] ^= 1 << (bit % 8)
	return out
}

// TestCheckpointBlob: the raw-file read path a replica serves evicted
// programs from validates what it returns and rejects a blob filed
// under the wrong key.
func TestCheckpointBlob(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := s.Create(testCheckpoint(5, 4))
	if err != nil {
		t.Fatal(err)
	}
	l.Close()

	blob, ck, err := s.CheckpointBlob(testKey)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Seq != 5 || len(blob) == 0 {
		t.Fatalf("blob seq %d len %d", ck.Seq, len(blob))
	}
	if _, _, err := s.CheckpointBlob(strings.Repeat("b", 64)); err == nil {
		t.Fatal("missing program returned a blob")
	}

	// A blob whose embedded key disagrees with its directory must not
	// be served (it would poison a peer under the wrong identity).
	wrong := strings.Repeat("c", 64)
	if err := os.MkdirAll(s.programDir(wrong), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(s.programDir(wrong), "CHECKPOINT"), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.CheckpointBlob(wrong); err == nil {
		t.Fatal("mis-keyed blob served")
	}
}

// BenchmarkWALAppend measures the per-record append path (marshal +
// frame + write + fsync). ReportAllocs pins the encode-buffer pooling:
// before pooling each record allocated a fresh marshal buffer plus a
// frame copy; pooled, the only steady-state allocations left are
// json.Marshal internals.
func BenchmarkWALAppend(b *testing.B) {
	dir := b.TempDir()
	s, _, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	l, err := s.Create(testCheckpoint(0, 0))
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	d := testDelta(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeCheckpoint covers the checkpoint/state-blob encode
// path shared by checkpoint folds and replica state serving.
func BenchmarkEncodeCheckpoint(b *testing.B) {
	ck := testCheckpoint(100, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeCheckpoint(ck); err != nil {
			b.Fatal(err)
		}
	}
}
