// Offline validation and repair of a state directory. Fsck applies the
// same trust rules as boot recovery — a program is only as good as its
// checksummed checkpoint plus the valid prefix of its WAL — but instead
// of rehydrating it reports and repairs: corrupt checkpoints are
// quarantined, torn WAL tails truncated, leftover temp files removed.
// Running fsck before a server start is never required (boot recovery
// does all of this implicitly) but gives an operator a dry accounting
// of what a crash cost.
package persist

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FsckProgram is one program's verdict.
type FsckProgram struct {
	Key string `json:"key"`
	// OK means the checkpoint validated; a quarantined program is not OK.
	OK bool `json:"ok"`
	// Err describes why a program was quarantined.
	Err string `json:"err,omitempty"`
	// Records is the count of valid WAL records beyond the checkpoint —
	// what boot recovery would replay.
	Records int `json:"records"`
	// TruncatedBytes is how much torn/corrupt WAL tail was cut off.
	TruncatedBytes int64 `json:"truncated_bytes,omitempty"`
	// Submissions/Pairs/Seen summarize the durable state for reporting.
	Submissions int `json:"submissions"`
	Pairs       int `json:"pairs"`
	Seen        int `json:"seen"`
}

// FsckReport is the full accounting of one fsck pass.
type FsckReport struct {
	Dir         string        `json:"dir"`
	Programs    []FsckProgram `json:"programs"`
	OK          int           `json:"ok"`
	Quarantined int           `json:"quarantined"`
	RemovedTemp int           `json:"removed_temp"`
}

// Fsck validates and repairs a state directory in place. It returns an
// error only when the directory itself is unusable; per-program damage
// is repaired (quarantine/truncate) and reported, exactly as boot
// recovery would handle it.
func Fsck(dir string) (*FsckReport, error) {
	rep := &FsckReport{Dir: dir}
	progRoot := filepath.Join(dir, "programs")
	entries, err := os.ReadDir(progRoot)
	if os.IsNotExist(err) {
		return rep, nil // nothing persisted yet: trivially clean
	}
	if err != nil {
		return nil, fmt.Errorf("fsck: %w", err)
	}
	s := &Store{dir: dir} // repair helper; no faults, no metrics
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		key := e.Name()
		pdir := filepath.Join(progRoot, key)
		fp := FsckProgram{Key: key}
		for _, tmp := range []string{"CHECKPOINT.tmp", "WAL.tmp"} {
			if os.Remove(filepath.Join(pdir, tmp)) == nil {
				rep.RemovedTemp++
			}
		}
		ck, err := readCheckpointFile(filepath.Join(pdir, "CHECKPOINT"), key)
		if err != nil {
			fp.Err = err.Error()
			if qerr := s.Quarantine(key); qerr != nil {
				os.RemoveAll(pdir)
			}
			rep.Quarantined++
			rep.Programs = append(rep.Programs, fp)
			continue
		}
		fp.OK = true
		fp.Submissions = ck.Submissions
		fp.Pairs = len(ck.State.Pairs)
		fp.Seen = len(ck.State.Seen)

		walPath := filepath.Join(pdir, "WAL")
		data, err := os.ReadFile(walPath)
		if err != nil && !os.IsNotExist(err) {
			// Boot recovery treats an unreadable WAL as an untrustworthy
			// program and quarantines it; fsck applies the same rule
			// rather than report the program ok with a buried error.
			fp.OK = false
			fp.Err = err.Error()
			if qerr := s.Quarantine(key); qerr != nil {
				os.RemoveAll(pdir)
			}
			rep.Quarantined++
			rep.Programs = append(rep.Programs, fp)
			continue
		}
		deltas, goodOff, _ := scanWAL(data, ck.Seq)
		fp.Records = len(deltas)
		if goodOff == 0 {
			if len(data) > 0 {
				fp.TruncatedBytes = int64(len(data)) - magicLen
				if fp.TruncatedBytes < 0 {
					fp.TruncatedBytes = int64(len(data))
				}
			}
			os.WriteFile(walPath, []byte(walMagic), 0o644)
		} else if goodOff < len(data) {
			fp.TruncatedBytes = int64(len(data) - goodOff)
			os.Truncate(walPath, int64(goodOff))
		}
		for _, d := range deltas {
			if d.SubmissionsAfter > fp.Submissions {
				fp.Submissions = d.SubmissionsAfter
			}
		}
		rep.OK++
		rep.Programs = append(rep.Programs, fp)
	}
	sort.Slice(rep.Programs, func(i, j int) bool { return rep.Programs[i].Key < rep.Programs[j].Key })
	return rep, nil
}

// Write renders the report for terminal consumption.
func (r *FsckReport) Write(w io.Writer) {
	fmt.Fprintf(w, "fsck %s: %d program(s), %d ok, %d quarantined, %d temp file(s) removed\n",
		r.Dir, len(r.Programs), r.OK, r.Quarantined, r.RemovedTemp)
	for _, p := range r.Programs {
		switch {
		case !p.OK:
			fmt.Fprintf(w, "  %s QUARANTINED: %s\n", short(p.Key), p.Err)
		case p.TruncatedBytes > 0:
			fmt.Fprintf(w, "  %s ok: %d submission(s), %d pair(s), %d wal record(s); truncated %dB torn tail\n",
				short(p.Key), p.Submissions, p.Pairs, p.Records, p.TruncatedBytes)
		default:
			fmt.Fprintf(w, "  %s ok: %d submission(s), %d pair(s), %d wal record(s)\n",
				short(p.Key), p.Submissions, p.Pairs, p.Records)
		}
	}
}

func short(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}
