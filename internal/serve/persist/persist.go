// Package persist is the crash-safe durability layer under the serve
// store. Each program (content-hash key) owns one directory holding a
// checkpoint — the full accumulated state as of some WAL sequence
// number — and an append-only write-ahead log of per-job deltas. Every
// completed job appends one fsync'd WAL record; every N records the
// serve layer folds the log into a fresh checkpoint (written with the
// tmp+fsync+rename+dir-fsync atomic-replace idiom) and resets the WAL.
// A kill -9 at any instant therefore loses at most the un-fsynced WAL
// tail: recovery replays checkpoint + the valid WAL prefix and truncates
// the rest.
//
// The package stores bytes and recovers structure; it does not know
// what an ExploreState is. Checkpoints carry a sched.StateSnapshot and
// WAL records a sched.StateDelta as opaque-but-versioned JSON; the
// serve layer re-binds them against a re-resolved module (guarded by
// the module fingerprint) and discards wholesale anything that no
// longer resolves — persist's job is only to guarantee that what comes
// back is exactly a durable prefix of what was written, or nothing.
//
// Replay is idempotent by construction: WAL records carry monotonic
// sequence numbers, a checkpoint records the sequence it has folded in,
// and recovery hands back only the records beyond it. A crash between
// "checkpoint renamed" and "WAL reset" — the classic double-apply
// window — leaves stale records in the log; the sequence guard skips
// them.
package persist

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"github.com/conanalysis/owl/internal/faultinject"
	"github.com/conanalysis/owl/internal/metrics"
	"github.com/conanalysis/owl/internal/sched"
)

// Version is the blob format version. A checkpoint with a different
// version does not rehydrate (it is quarantined); bump it whenever the
// wire structs or the frame grammar change incompatibly.
const Version = 1

// ProgramSource is the program identity a checkpoint preserves — the
// Spec fields that resolve() hashes into the store key. Recovery
// re-resolves the module from these and refuses the blob when the
// resolved identity (key, module fingerprint) no longer matches.
type ProgramSource struct {
	Workload string  `json:"workload,omitempty"`
	Recipe   string  `json:"recipe,omitempty"`
	Noise    string  `json:"noise,omitempty"`
	Program  string  `json:"program,omitempty"`
	Inputs   []int64 `json:"inputs,omitempty"`
}

// Checkpoint is the full durable state of one program as of WAL
// sequence Seq: identity, accumulated counters, the deduplicated
// report-ID list in first-seen order, and the stable-form ExploreState.
type Checkpoint struct {
	Version     int                 `json:"version"`
	Key         string              `json:"key"`
	Name        string              `json:"name"`
	Source      ProgramSource       `json:"source"`
	ModuleFP    string              `json:"module_fp"`
	Seq         uint64              `json:"seq"`
	Submissions int                 `json:"submissions"`
	Reports     []string            `json:"reports,omitempty"`
	State       sched.StateSnapshot `json:"state"`
}

// Delta is one job's durable contribution: the absolute submission
// count after the job (absolute, like StateDelta.Explorations, so
// replaying an already-folded record cannot double-count), the report
// IDs the job newly added in append order, and the journaled state
// delta.
type Delta struct {
	SubmissionsAfter int               `json:"submissions"`
	Reports          []string          `json:"reports,omitempty"`
	State            *sched.StateDelta `json:"state,omitempty"`
}

// walRecord is the framed WAL payload: a delta stamped with its
// sequence number.
type walRecord struct {
	Seq   uint64 `json:"seq"`
	Delta Delta  `json:"delta"`
}

// Options configures a Store.
type Options struct {
	// Faults, when non-nil, injects deterministic disk faults at the
	// persist.* operation points (see frame.go).
	Faults *faultinject.Plan
	// Metrics receives the serve.persist_* counters (nil-safe).
	Metrics *metrics.Collector
}

// Store is one state directory. It owns the directory layout
// (programs/<key>/{CHECKPOINT,WAL}, quarantine/...) and the
// fault-injection sequence counters; per-program durability state lives
// in Logs.
type Store struct {
	dir  string
	opts Options

	mu  sync.Mutex
	seq map[string]int // (key|op) -> next fault-injection sequence
}

// Log is the open durability handle for one program: an append handle
// on its WAL plus the bookkeeping that keeps appends, checkpoints, and
// crash recovery consistent. Methods are safe for concurrent use, but
// the serve layer additionally serializes Append/Checkpoint per program
// so a checkpoint cannot interleave with the absorb it is snapshotting.
type Log struct {
	store *Store
	key   string
	dir   string

	mu      sync.Mutex
	wal     *os.File
	walOff  int64  // end of the last known-good record
	records int    // records appended since the last checkpoint
	nextSeq uint64 // sequence the next Append stamps
	broken  bool   // truncate-back failed; appends refuse until a WAL reset swings in a fresh handle
}

// Recovered is one program successfully rehydrated by Open: its
// checkpoint, the valid WAL records beyond the checkpoint's sequence in
// append order, and the live Log to continue appending to.
type Recovered struct {
	Checkpoint Checkpoint
	Deltas     []Delta
	Log        *Log
}

func (s *Store) count(name string, n int64) { s.opts.Metrics.Count(name, n) }

// Dir returns the state directory root.
func (s *Store) Dir() string { return s.dir }

func (s *Store) programDir(key string) string {
	return filepath.Join(s.dir, "programs", key)
}

// Open opens (creating if needed) a state directory and recovers every
// program in it. Corrupt programs are quarantined and counted, never
// fatal: the error return is only for an unusable directory itself.
// Recovered programs come back sorted by key so boot is deterministic.
func Open(dir string, opts Options) (*Store, []*Recovered, error) {
	s := &Store{dir: dir, opts: opts}
	if err := os.MkdirAll(filepath.Join(dir, "programs"), 0o755); err != nil {
		return nil, nil, fmt.Errorf("persist: %w", err)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "programs"))
	if err != nil {
		return nil, nil, fmt.Errorf("persist: %w", err)
	}
	var recovered []*Recovered
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		key := e.Name()
		rec, err := s.recoverProgram(key)
		if err != nil {
			s.count("serve.persist_quarantined", 1)
			if qerr := s.Quarantine(key); qerr != nil {
				// The blob is bad and cannot be moved aside; removing it
				// is the only way to keep the next boot from tripping on
				// it again.
				os.RemoveAll(s.programDir(key))
			}
			continue
		}
		s.count("serve.persist_recovered", 1)
		s.count("serve.persist_replayed", int64(len(rec.Deltas)))
		recovered = append(recovered, rec)
	}
	sort.Slice(recovered, func(i, j int) bool {
		return recovered[i].Checkpoint.Key < recovered[j].Checkpoint.Key
	})
	return s, recovered, nil
}

// recoverProgram rehydrates one program directory. An error means the
// checkpoint itself cannot be trusted (quarantine the directory); WAL
// damage is handled here by truncating to the valid prefix.
func (s *Store) recoverProgram(key string) (*Recovered, error) {
	dir := s.programDir(key)
	ck, err := readCheckpointFile(filepath.Join(dir, "CHECKPOINT"), key)
	if err != nil {
		return nil, err
	}
	// Leftover temp files are un-renamed partial writes: harmless, remove.
	for _, tmp := range []string{"CHECKPOINT.tmp", "WAL.tmp"} {
		os.Remove(filepath.Join(dir, tmp))
	}

	l := &Log{store: s, key: key, dir: dir, nextSeq: ck.Seq + 1}
	walPath := filepath.Join(dir, "WAL")
	data, err := os.ReadFile(walPath)
	switch {
	case os.IsNotExist(err):
		// Crash between checkpoint rename and WAL creation: the
		// checkpoint alone is the durable state.
		data = nil
	case err != nil:
		return nil, err
	}

	deltas, goodOff, maxSeq := scanWAL(data, ck.Seq)
	l.records = len(deltas)
	if maxSeq >= l.nextSeq {
		l.nextSeq = maxSeq + 1
	}
	if goodOff < len(data) {
		s.count("serve.persist_truncated_tails", 1)
	}

	// Rewrite or truncate the WAL to exactly its valid prefix, then open
	// the append handle at that point.
	if goodOff == 0 {
		if err := os.WriteFile(walPath, []byte(walMagic), 0o644); err != nil {
			return nil, err
		}
		goodOff = magicLen
	} else if goodOff < len(data) {
		if err := os.Truncate(walPath, int64(goodOff)); err != nil {
			return nil, err
		}
	}
	wal, err := os.OpenFile(walPath, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if err := wal.Sync(); err != nil {
		wal.Close()
		return nil, err
	}
	l.wal, l.walOff = wal, int64(goodOff)
	return &Recovered{Checkpoint: ck, Deltas: deltas, Log: l}, nil
}

// scanWAL walks WAL bytes and returns the deltas of valid records with
// sequence beyond afterSeq (in order), the byte offset where the valid
// prefix ends, and the highest sequence seen. goodOff == 0 means even
// the magic header is unreadable — the whole file is untrustworthy.
func scanWAL(data []byte, afterSeq uint64) (deltas []Delta, goodOff int, maxSeq uint64) {
	if len(data) < magicLen || string(data[:magicLen]) != walMagic {
		return nil, 0, 0
	}
	off := magicLen
	goodOff = off
	for off < len(data) {
		payload, next, ok := readFrame(data, off)
		if !ok {
			break
		}
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			break
		}
		if rec.Seq <= maxSeq {
			// Sequence went backwards or repeated: everything from here
			// on is from a writer we cannot reason about.
			break
		}
		maxSeq = rec.Seq
		if rec.Seq > afterSeq {
			deltas = append(deltas, rec.Delta)
		}
		off = next
		goodOff = off
	}
	return deltas, goodOff, maxSeq
}

// readCheckpointFile reads and validates one checkpoint blob: magic,
// exactly one well-checksummed frame, matching version and key.
func readCheckpointFile(path, key string) (Checkpoint, error) {
	var ck Checkpoint
	body, err := readMagicFile(path, ckptMagic)
	if err != nil {
		return ck, err
	}
	payload, next, ok := readFrame(body, 0)
	if !ok || next != len(body) {
		return ck, fmt.Errorf("persist: %s: corrupt frame", path)
	}
	if err := json.Unmarshal(payload, &ck); err != nil {
		return ck, fmt.Errorf("persist: %s: %w", path, err)
	}
	if ck.Version != Version {
		return ck, fmt.Errorf("persist: %s: version %d, want %d", path, ck.Version, Version)
	}
	if key != "" && ck.Key != key {
		return ck, fmt.Errorf("persist: %s: checkpoint key %s under directory %s", path, ck.Key, key)
	}
	return ck, nil
}

// EncodeCheckpoint renders ck as a standalone checkpoint blob — the
// exact bytes a CHECKPOINT file holds (magic + one CRC-framed JSON
// payload). This is also the replica state-exchange wire format
// (internal/serve/replicate): what one replica serves is what another
// could have read off disk, so both sides share one validator.
func EncodeCheckpoint(ck Checkpoint) ([]byte, error) {
	ck.Version = Version
	buf, err := marshalFramed(ck)
	if err != nil {
		return nil, err
	}
	defer putEncBuf(buf)
	out := make([]byte, 0, magicLen+buf.Len())
	out = append(out, ckptMagic...)
	out = append(out, buf.Bytes()...)
	return out, nil
}

// DecodeCheckpoint validates and decodes a checkpoint blob produced by
// EncodeCheckpoint (or read verbatim from a CHECKPOINT file): magic,
// exactly one well-checksummed frame, matching format version. Key
// identity is the caller's to verify — it knows which key it asked for.
func DecodeCheckpoint(data []byte) (Checkpoint, error) {
	var ck Checkpoint
	if len(data) < magicLen || string(data[:magicLen]) != ckptMagic {
		return ck, fmt.Errorf("persist: checkpoint blob: bad magic")
	}
	body := data[magicLen:]
	payload, next, ok := readFrame(body, 0)
	if !ok || next != len(body) {
		return ck, fmt.Errorf("persist: checkpoint blob: corrupt frame")
	}
	if err := json.Unmarshal(payload, &ck); err != nil {
		return ck, fmt.Errorf("persist: checkpoint blob: %w", err)
	}
	if ck.Version != Version {
		return ck, fmt.Errorf("persist: checkpoint blob: version %d, want %d", ck.Version, Version)
	}
	return ck, nil
}

// CheckpointBlob reads a program's durable CHECKPOINT file verbatim and
// validates it — the bytes a replica serves for a program it has
// evicted from memory. The WAL tail is deliberately not folded in: the
// blob is whatever the last checkpoint covered (ck.Seq says how much),
// and a peer that wants fresher state will hear about it through the
// next anti-entropy push.
func (s *Store) CheckpointBlob(key string) ([]byte, Checkpoint, error) {
	data, err := os.ReadFile(filepath.Join(s.programDir(key), "CHECKPOINT"))
	if err != nil {
		return nil, Checkpoint{}, err
	}
	ck, err := DecodeCheckpoint(data)
	if err != nil {
		return nil, Checkpoint{}, err
	}
	if ck.Key != key {
		return nil, Checkpoint{}, fmt.Errorf("persist: checkpoint key %s under directory %s", ck.Key, key)
	}
	return data, ck, nil
}

// Create makes the program directory and writes its first checkpoint
// and an empty WAL, returning the live Log. Any failure leaves no
// half-created program behind.
func (s *Store) Create(ck Checkpoint) (*Log, error) {
	ck.Version = Version
	dir := s.programDir(ck.Key)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{store: s, key: ck.Key, dir: dir, nextSeq: ck.Seq + 1}
	if err := l.writeCheckpointLocked(ck); err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	if err := l.resetWALLocked(); err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	return l, nil
}

// Reopen recovers a single program directory — the lazy-rehydrate path
// after an eviction. It returns (nil, nil) when key has no durable
// state; a damaged blob is quarantined (exactly as Open would) and
// returned as an error.
func (s *Store) Reopen(key string) (*Recovered, error) {
	if _, err := os.Stat(s.programDir(key)); err != nil {
		return nil, nil
	}
	rec, err := s.recoverProgram(key)
	if err != nil {
		s.count("serve.persist_quarantined", 1)
		if qerr := s.Quarantine(key); qerr != nil {
			os.RemoveAll(s.programDir(key))
		}
		return nil, err
	}
	s.count("serve.persist_recovered", 1)
	s.count("serve.persist_replayed", int64(len(rec.Deltas)))
	return rec, nil
}

// Quarantine moves a program directory aside under quarantine/ so boot
// never trips on it again but a human (or fsck) can inspect it.
func (s *Store) Quarantine(key string) error {
	qdir := filepath.Join(s.dir, "quarantine")
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return err
	}
	dst := filepath.Join(qdir, key)
	for i := 1; ; i++ {
		if _, err := os.Stat(dst); os.IsNotExist(err) {
			break
		}
		dst = filepath.Join(qdir, fmt.Sprintf("%s.%d", key, i))
	}
	return os.Rename(s.programDir(key), dst)
}

// LastSeq returns the sequence number of the last appended record (or
// the checkpoint's, when none).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq - 1
}

// Records returns the number of WAL records since the last checkpoint —
// the input to the serve layer's checkpoint-every policy.
func (l *Log) Records() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// Append stamps the delta with the next sequence number and appends one
// fsync'd record. On failure the WAL is truncated back to its last good
// record, so a failed append never leaves a partial frame for recovery
// to trip on; if even the truncate fails the log marks itself broken
// and refuses further appends — existing durable state stays intact —
// until a successful checkpoint replaces the suspect WAL with a fresh
// one.
func (l *Log) Append(d Delta) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken {
		return fmt.Errorf("persist: log for %s is broken (earlier append failed unrecoverably)", l.key)
	}
	buf, err := marshalFramed(walRecord{Seq: l.nextSeq, Delta: d})
	if err != nil {
		return err
	}
	defer putEncBuf(buf)
	n := buf.Len()
	err = l.store.write(l.wal, l.key, "persist.wal.append", buf.Bytes())
	if err == nil {
		err = l.store.fsync(l.wal, l.key, "persist.wal.fsync")
	}
	if err != nil {
		if terr := l.wal.Truncate(l.walOff); terr != nil {
			l.broken = true
		}
		return err
	}
	l.walOff += int64(n)
	l.records++
	l.nextSeq++
	l.store.count("serve.persist_wal_records", 1)
	l.store.count("serve.persist_wal_bytes", int64(n))
	return nil
}

// Checkpoint atomically replaces the program's checkpoint with ck and
// resets the WAL. The caller composes ck from its live state and stamps
// ck.Seq = LastSeq(); records at or below it are covered. If the
// checkpoint lands but the WAL reset fails, the log stays usable — the
// stale records are skipped at recovery by the sequence guard — and the
// error is reported so the caller can count it.
func (l *Log) Checkpoint(ck Checkpoint) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	ck.Version = Version
	if err := l.writeCheckpointLocked(ck); err != nil {
		return err
	}
	l.store.count("serve.persist_checkpoints", 1)
	// The checkpoint now covers every record in the WAL; from the policy's
	// point of view the log is empty even if the physical reset fails.
	l.records = 0
	if err := l.resetWALLocked(); err != nil {
		return fmt.Errorf("persist: checkpoint written but WAL reset failed (stale records remain, harmless): %w", err)
	}
	return nil
}

func (l *Log) writeCheckpointLocked(ck Checkpoint) error {
	buf, err := marshalFramed(ck)
	if err != nil {
		return err
	}
	defer putEncBuf(buf)
	return l.store.writeFileAtomic(l.key, "persist.checkpoint",
		filepath.Join(l.dir, "CHECKPOINT"), ckptMagic, buf.Bytes())
}

// resetWALLocked atomically replaces the WAL with an empty one and
// swings the append handle over to it.
func (l *Log) resetWALLocked() error {
	path := filepath.Join(l.dir, "WAL")
	if err := l.store.writeFileAtomic(l.key, "persist.wal.reset", path, walMagic, nil); err != nil {
		return err
	}
	wal, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if l.wal != nil {
		l.wal.Close()
	}
	l.wal, l.walOff = wal, magicLen
	// A fresh WAL handle at a known-good offset clears any earlier
	// broken mark: broken meant "the old handle's tail is untrustworthy
	// and could not be truncated back", and that handle is gone now.
	l.broken = false
	return nil
}

// Close releases the WAL handle. The log must not be used afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.wal == nil {
		return nil
	}
	err := l.wal.Close()
	l.wal = nil
	return err
}
