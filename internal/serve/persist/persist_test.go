package persist

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/conanalysis/owl/internal/faultinject"
	"github.com/conanalysis/owl/internal/metrics"
	"github.com/conanalysis/owl/internal/sched"
)

const testKey = "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"

func testCheckpoint(seq uint64, submissions int) Checkpoint {
	return Checkpoint{
		Key:         testKey,
		Name:        "test/prog",
		Source:      ProgramSource{Program: "module m\n", Inputs: []int64{1, 2}},
		ModuleFP:    "deadbeef",
		Seq:         seq,
		Submissions: submissions,
		Reports:     []string{"r0"},
		State:       sched.StateSnapshot{Seen: []string{"r0"}, Explorations: submissions},
	}
}

func testDelta(i int) Delta {
	return Delta{
		SubmissionsAfter: i,
		Reports:          []string{"r" + strings.Repeat("x", i)},
		State: &sched.StateDelta{
			Pairs:        []sched.StablePair{{FromFn: "f", FromIx: i, ToFn: "g", ToIx: 0}},
			Seen:         []string{"r" + strings.Repeat("x", i)},
			Explorations: i,
		},
	}
}

func counterVal(c *metrics.Collector, name string) int64 {
	for _, cr := range c.Snapshot().Counters {
		if cr.Name == name {
			return cr.Value
		}
	}
	return 0
}

// TestCheckpointWALRoundTrip: create, append, close, reopen — recovery
// hands back the checkpoint and every appended delta in order, and the
// sequence numbering continues where it left off.
func TestCheckpointWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, recovered, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 {
		t.Fatalf("fresh dir recovered %d programs", len(recovered))
	}
	l, err := s.Create(testCheckpoint(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 2; i <= 4; i++ {
		if err := l.Append(testDelta(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if l.LastSeq() != 3 || l.Records() != 3 {
		t.Fatalf("lastSeq=%d records=%d, want 3/3", l.LastSeq(), l.Records())
	}
	l.Close()

	mc := metrics.New()
	_, recovered, err = Open(dir, Options{Metrics: mc})
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 {
		t.Fatalf("recovered %d programs, want 1", len(recovered))
	}
	rec := recovered[0]
	if rec.Checkpoint.Key != testKey || rec.Checkpoint.Submissions != 1 || rec.Checkpoint.ModuleFP != "deadbeef" {
		t.Fatalf("checkpoint = %+v", rec.Checkpoint)
	}
	if len(rec.Deltas) != 3 {
		t.Fatalf("deltas = %d, want 3", len(rec.Deltas))
	}
	for i, d := range rec.Deltas {
		if d.SubmissionsAfter != i+2 || d.State == nil || d.State.Pairs[0].FromIx != i+2 {
			t.Fatalf("delta %d = %+v", i, d)
		}
	}
	if rec.Log.LastSeq() != 3 {
		t.Fatalf("recovered lastSeq = %d, want 3", rec.Log.LastSeq())
	}
	if got := counterVal(mc, "serve.persist_recovered"); got != 1 {
		t.Errorf("persist_recovered = %d", got)
	}
	if got := counterVal(mc, "serve.persist_replayed"); got != 3 {
		t.Errorf("persist_replayed = %d", got)
	}
	rec.Log.Close()
}

// TestCheckpointCoversWAL: records at or below the checkpoint's
// sequence are not replayed; the WAL physically resets.
func TestCheckpointCoversWAL(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := Open(dir, Options{})
	l, err := s.Create(testCheckpoint(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	l.Append(testDelta(2))
	l.Append(testDelta(3))
	if err := l.Checkpoint(testCheckpoint(l.LastSeq(), 3)); err != nil {
		t.Fatal(err)
	}
	if l.Records() != 0 {
		t.Fatalf("records after checkpoint = %d", l.Records())
	}
	if err := l.Append(testDelta(4)); err != nil {
		t.Fatal(err)
	}
	l.Close()

	_, recovered, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec := recovered[0]
	if rec.Checkpoint.Submissions != 3 || rec.Checkpoint.Seq != 2 {
		t.Fatalf("checkpoint = %+v", rec.Checkpoint)
	}
	if len(rec.Deltas) != 1 || rec.Deltas[0].SubmissionsAfter != 4 {
		t.Fatalf("deltas = %+v", rec.Deltas)
	}
	rec.Log.Close()
}

// TestTornWriteLosesOnlyTail: a torn append (the kill -9 page-cache
// case — reported as success, half the bytes on disk) costs exactly
// that record at recovery; the prefix survives and the log keeps
// working afterwards.
func TestTornWriteLosesOnlyTail(t *testing.T) {
	dir := t.TempDir()
	plan := &faultinject.Plan{Rules: []faultinject.Rule{
		{Stage: "persist.wal.append", Run: 2, Kind: faultinject.KindTornWrite},
	}}
	s, _, _ := Open(dir, Options{Faults: plan})
	l, err := s.Create(testCheckpoint(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 2; i <= 4; i++ { // third append (run seq 2) tears silently
		if err := l.Append(testDelta(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	l.Close()

	mc := metrics.New()
	_, recovered, err := Open(dir, Options{Metrics: mc})
	if err != nil {
		t.Fatal(err)
	}
	rec := recovered[0]
	if len(rec.Deltas) != 2 {
		t.Fatalf("deltas = %d, want 2 (torn third lost)", len(rec.Deltas))
	}
	if got := counterVal(mc, "serve.persist_truncated_tails"); got != 1 {
		t.Errorf("truncated_tails = %d", got)
	}
	// The torn tail was physically truncated; new appends land cleanly.
	if rec.Log.LastSeq() != 2 {
		t.Fatalf("lastSeq after tear = %d, want 2", rec.Log.LastSeq())
	}
	if err := rec.Log.Append(testDelta(4)); err != nil {
		t.Fatal(err)
	}
	rec.Log.Close()
	_, recovered, _ = Open(dir, Options{})
	if len(recovered[0].Deltas) != 3 {
		t.Fatalf("after repair deltas = %d, want 3", len(recovered[0].Deltas))
	}
	recovered[0].Log.Close()
}

// TestBitFlipDetected: a flipped bit in a WAL record fails its CRC and
// costs the tail; a flipped bit in a checkpoint quarantines the program
// instead of serving silently-wrong coverage.
func TestBitFlipDetected(t *testing.T) {
	t.Run("wal", func(t *testing.T) {
		dir := t.TempDir()
		plan := &faultinject.Plan{Rules: []faultinject.Rule{
			{Stage: "persist.wal.append", Run: 1, Kind: faultinject.KindBitFlip, Bit: 77},
		}}
		s, _, _ := Open(dir, Options{Faults: plan})
		l, _ := s.Create(testCheckpoint(0, 1))
		l.Append(testDelta(2))
		l.Append(testDelta(3)) // flipped on disk
		l.Append(testDelta(4)) // unreadable: after the corrupt frame
		l.Close()

		mc := metrics.New()
		_, recovered, err := Open(dir, Options{Metrics: mc})
		if err != nil {
			t.Fatal(err)
		}
		if len(recovered[0].Deltas) != 1 {
			t.Fatalf("deltas = %d, want 1 (flip kills record 2 and strands record 3)", len(recovered[0].Deltas))
		}
		if counterVal(mc, "serve.persist_truncated_tails") != 1 {
			t.Error("flip not counted as truncated tail")
		}
		recovered[0].Log.Close()
	})
	t.Run("checkpoint", func(t *testing.T) {
		dir := t.TempDir()
		plan := &faultinject.Plan{Rules: []faultinject.Rule{
			{Stage: "persist.checkpoint.write", Run: -1, Kind: faultinject.KindBitFlip, Bit: 300},
		}}
		s, _, _ := Open(dir, Options{Faults: plan})
		if _, err := s.Create(testCheckpoint(0, 1)); err != nil {
			t.Fatal(err)
		}
		mc := metrics.New()
		_, recovered, err := Open(dir, Options{Metrics: mc})
		if err != nil {
			t.Fatal(err)
		}
		if len(recovered) != 0 {
			t.Fatalf("corrupt checkpoint recovered: %+v", recovered[0].Checkpoint)
		}
		if counterVal(mc, "serve.persist_quarantined") != 1 {
			t.Error("corrupt checkpoint not counted")
		}
		if _, err := os.Stat(filepath.Join(dir, "quarantine")); err != nil {
			t.Errorf("no quarantine dir: %v", err)
		}
		if _, err := os.Stat(filepath.Join(dir, "programs", testKey)); !os.IsNotExist(err) {
			t.Error("corrupt program still under programs/")
		}
	})
}

// TestShortWriteAndFsyncErrorFailAppend: faults that report errors make
// Append fail cleanly — the WAL is truncated back, the next append
// succeeds, and recovery never sees a partial frame.
func TestShortWriteAndFsyncErrorFailAppend(t *testing.T) {
	for _, kind := range []faultinject.Kind{faultinject.KindShortWrite, faultinject.KindFsyncError} {
		t.Run(string(kind), func(t *testing.T) {
			stage := "persist.wal.append"
			if kind == faultinject.KindFsyncError {
				stage = "persist.wal.fsync"
			}
			dir := t.TempDir()
			plan := &faultinject.Plan{Rules: []faultinject.Rule{{Stage: stage, Run: 1, Kind: kind}}}
			s, _, _ := Open(dir, Options{Faults: plan})
			l, _ := s.Create(testCheckpoint(0, 1))
			if err := l.Append(testDelta(2)); err != nil {
				t.Fatal(err)
			}
			if err := l.Append(testDelta(3)); err == nil {
				t.Fatal("faulted append reported success")
			}
			if err := l.Append(testDelta(4)); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
			l.Close()
			_, recovered, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			rec := recovered[0]
			if len(rec.Deltas) != 2 || rec.Deltas[0].SubmissionsAfter != 2 || rec.Deltas[1].SubmissionsAfter != 4 {
				t.Fatalf("deltas = %+v", rec.Deltas)
			}
			rec.Log.Close()
		})
	}
}

// TestCheckpointCrashBeforeWALReset: the classic double-apply window. A
// checkpoint lands but the WAL reset fails; the stale records stay in
// the log and recovery must skip them via the sequence guard.
func TestCheckpointCrashBeforeWALReset(t *testing.T) {
	dir := t.TempDir()
	plan := &faultinject.Plan{Rules: []faultinject.Rule{
		{Stage: "persist.wal.reset.write", Run: 1, Kind: faultinject.KindShortWrite},
	}}
	s, _, _ := Open(dir, Options{Faults: plan})
	l, _ := s.Create(testCheckpoint(0, 1)) // reset run 0: creation
	l.Append(testDelta(2))
	l.Append(testDelta(3))
	if err := l.Checkpoint(testCheckpoint(l.LastSeq(), 3)); err == nil {
		t.Fatal("checkpoint with failed WAL reset reported full success")
	}
	// The log stays usable: the next append lands in the OLD WAL with a
	// fresh sequence number.
	if err := l.Append(testDelta(4)); err != nil {
		t.Fatal(err)
	}
	l.Close()

	_, recovered, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec := recovered[0]
	if rec.Checkpoint.Submissions != 3 {
		t.Fatalf("checkpoint = %+v, want the new one", rec.Checkpoint)
	}
	if len(rec.Deltas) != 1 || rec.Deltas[0].SubmissionsAfter != 4 {
		t.Fatalf("deltas = %+v, want only the post-checkpoint record", rec.Deltas)
	}
	rec.Log.Close()
}

// TestGarbageTailTruncated: raw garbage appended after a kill is cut
// off at recovery without losing the good prefix.
func TestGarbageTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := Open(dir, Options{})
	l, _ := s.Create(testCheckpoint(0, 1))
	l.Append(testDelta(2))
	l.Close()
	walPath := filepath.Join(dir, "programs", testKey, "WAL")
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xff, 0x13, 0x37, 0x00, 0x42})
	f.Close()

	_, recovered, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec := recovered[0]
	if len(rec.Deltas) != 1 {
		t.Fatalf("deltas = %d, want 1", len(rec.Deltas))
	}
	if err := rec.Log.Append(testDelta(3)); err != nil {
		t.Fatal(err)
	}
	rec.Log.Close()
	_, recovered, _ = Open(dir, Options{})
	if len(recovered[0].Deltas) != 2 {
		t.Fatalf("post-repair deltas = %d, want 2", len(recovered[0].Deltas))
	}
	recovered[0].Log.Close()
}

// TestFsck: a state dir with one healthy program, one torn WAL, one
// corrupt checkpoint, and temp leftovers fscks to the right accounting,
// and a subsequent Open recovers cleanly.
func TestFsck(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := Open(dir, Options{})
	l, _ := s.Create(testCheckpoint(0, 1))
	l.Append(testDelta(2))
	l.Close()

	tornKey := strings.Repeat("b", 64)
	ck := testCheckpoint(0, 1)
	ck.Key = tornKey
	l2, _ := s.Create(ck)
	l2.Append(testDelta(2))
	l2.Close()
	tornWAL := filepath.Join(dir, "programs", tornKey, "WAL")
	f, _ := os.OpenFile(tornWAL, os.O_WRONLY|os.O_APPEND, 0o644)
	f.Write([]byte("torn"))
	f.Close()

	badKey := strings.Repeat("c", 64)
	badDir := filepath.Join(dir, "programs", badKey)
	os.MkdirAll(badDir, 0o755)
	os.WriteFile(filepath.Join(badDir, "CHECKPOINT"), []byte("not a checkpoint"), 0o644)
	os.WriteFile(filepath.Join(badDir, "CHECKPOINT.tmp"), []byte("leftover"), 0o644)

	rep, err := Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Programs) != 3 || rep.OK != 2 || rep.Quarantined != 1 || rep.RemovedTemp != 1 {
		t.Fatalf("report = %+v", rep)
	}
	for _, p := range rep.Programs {
		switch p.Key {
		case testKey:
			if !p.OK || p.Records != 1 || p.Submissions != 2 {
				t.Errorf("healthy program verdict = %+v", p)
			}
		case tornKey:
			if !p.OK || p.TruncatedBytes != 4 {
				t.Errorf("torn program verdict = %+v", p)
			}
		case badKey:
			if p.OK || p.Err == "" {
				t.Errorf("corrupt program verdict = %+v", p)
			}
		}
	}

	// After fsck the directory opens without further repair.
	mc := metrics.New()
	_, recovered, err := Open(dir, Options{Metrics: mc})
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 2 {
		t.Fatalf("post-fsck recovery = %d programs, want 2", len(recovered))
	}
	if counterVal(mc, "serve.persist_truncated_tails") != 0 {
		t.Error("fsck left a torn tail behind")
	}
	for _, r := range recovered {
		r.Log.Close()
	}
}

// TestBrokenLogRecoversAfterCheckpoint: a log marked broken (failed
// truncate-back after a failed append) refuses appends only until a
// successful checkpoint swings in a fresh WAL — not for the rest of the
// process lifetime.
func TestBrokenLogRecoversAfterCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := s.Create(testCheckpoint(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	l.mu.Lock()
	l.broken = true
	l.mu.Unlock()
	if err := l.Append(testDelta(2)); err == nil {
		t.Fatal("append on a broken log succeeded")
	}
	if err := l.Checkpoint(testCheckpoint(l.LastSeq(), 2)); err != nil {
		t.Fatalf("checkpoint on a broken log: %v", err)
	}
	if err := l.Append(testDelta(3)); err != nil {
		t.Fatalf("append still refused after the WAL was replaced: %v", err)
	}
	l.Close()

	_, recovered, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 || len(recovered[0].Deltas) != 1 || recovered[0].Deltas[0].SubmissionsAfter != 3 {
		t.Fatalf("recovered = %+v, want the one post-recovery delta", recovered)
	}
	recovered[0].Log.Close()
}

// TestFsckUnreadableWALQuarantines: a WAL that exists but cannot be
// read is an untrustworthy program — fsck must quarantine it (as boot
// recovery would), not report it ok with a buried error.
func TestFsckUnreadableWALQuarantines(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := s.Create(testCheckpoint(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	// A directory where the WAL file should be makes ReadFile fail with
	// an error that is not NotExist, regardless of the test's privileges.
	walPath := filepath.Join(dir, "programs", testKey, "WAL")
	os.Remove(walPath)
	if err := os.Mkdir(walPath, 0o755); err != nil {
		t.Fatal(err)
	}

	rep, err := Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != 0 || rep.Quarantined != 1 || len(rep.Programs) != 1 {
		t.Fatalf("report = %+v, want the program quarantined", rep)
	}
	p := rep.Programs[0]
	if p.OK || p.Err == "" {
		t.Fatalf("verdict = %+v, want not-OK with the read error", p)
	}
	if _, err := os.Stat(filepath.Join(dir, "programs", testKey)); !os.IsNotExist(err) {
		t.Error("quarantined program still present under programs/")
	}
}

// TestFsckEmptyDir: fsck of a nonexistent or empty dir is clean.
func TestFsckEmptyDir(t *testing.T) {
	rep, err := Fsck(filepath.Join(t.TempDir(), "never-created"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Programs) != 0 || rep.Quarantined != 0 {
		t.Fatalf("report = %+v", rep)
	}
}
