// Package serve is the always-on OWL analysis service: an HTTP/JSON
// front end over the owl.Run pipeline with a bounded, sharded job queue
// and a content-hash-keyed store that accumulates exploration state
// across submissions.
//
// Submissions are routed to a shard by their program's content hash, so
// all jobs for one program serialize on one goroutine and mutate that
// program's sched.ExploreState without locking games; different
// programs analyze in parallel across shards. A repeat submission of an
// already-analyzed program starts from the accumulated coverage and
// seen-report set, saturates early, and executes strictly fewer
// schedules than the first submission at equal budget — resume, not
// restart. See docs/SERVE.md.
package serve

import (
	"context"
	"fmt"
	"hash/fnv"
	"net/http"
	"sync"
	"time"

	"github.com/conanalysis/owl/internal/faultinject"
	"github.com/conanalysis/owl/internal/metrics"
	"github.com/conanalysis/owl/internal/owl"
	"github.com/conanalysis/owl/internal/report"
	"github.com/conanalysis/owl/internal/serve/persist"
	"github.com/conanalysis/owl/internal/serve/replicate"
)

// Config tunes a Server. Zero values select the defaults noted on each
// field.
type Config struct {
	// Shards is the number of shard queues/goroutines (default 4). Jobs
	// hash to a shard by program content key.
	Shards int
	// QueueDepth bounds each shard's queue (default 64). A submission
	// that finds its shard full is rejected with 429 + Retry-After.
	QueueDepth int
	// Workers is the per-job owl pipeline worker-pool width passed to
	// owl.Run when the submission doesn't set one (default 1).
	Workers int
	// SnapEntries sizes each program's persistent snapshot cache
	// (default 64; 0 disables persistent snapshotting).
	SnapEntries int
	// TenantQuota caps queued+running jobs per tenant (default 16;
	// exceeding it is rejected with 429 + Retry-After).
	TenantQuota int
	// RetryAfter is the hint returned with 429 responses (default 1s).
	RetryAfter time.Duration
	// Metrics, when non-nil, is the live collector /metrics scrapes;
	// finished jobs' collectors are merged into it. Defaults to a fresh
	// collector.
	Metrics *metrics.Collector
	// StateDir, when non-empty, makes the store crash-safe: every
	// program's accumulated state persists under this directory as a
	// checkpoint plus a WAL of per-job deltas, and New recovers it on
	// boot (see internal/serve/persist). Empty = in-memory only.
	StateDir string
	// CheckpointEvery folds a program's WAL into a fresh checkpoint
	// after this many records (default 8).
	CheckpointEvery int
	// MaxPrograms bounds the in-memory program states; exceeding it
	// evicts the least-recently-used program with no jobs in flight
	// (rehydrated lazily from StateDir on the next touch, or forgotten
	// when persistence is off). 0 = unlimited.
	MaxPrograms int
	// Faults injects deterministic disk faults into the persistence
	// layer and network faults into the replica client
	// (crash-consistency and fleet-fault tests); nil injects nothing.
	Faults *faultinject.Plan
	// Peers is the base URLs of the other owl-serve replicas. Non-empty
	// enables fleet warm-start: cold Submit misses fetch state from
	// peers before paying cold-start, and checkpoint folds push state
	// back out (see internal/serve/replicate and docs/SERVE.md).
	Peers []string
	// PeerTimeout/PeerRetries/PeerBackoff/PeerCoolDown tune the peer
	// client (defaults per replicate.Config).
	PeerTimeout  time.Duration
	PeerRetries  int
	PeerBackoff  time.Duration
	PeerCoolDown time.Duration
	// PeerClient issues peer requests (default a fresh http.Client; the
	// in-process fleet harness installs handler-backed transports here).
	PeerClient *http.Client
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.SnapEntries < 0 {
		c.SnapEntries = 0
	}
	if c.TenantQuota <= 0 {
		c.TenantQuota = 16
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Metrics == nil {
		c.Metrics = metrics.New()
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 8
	}
	if c.MaxPrograms < 0 {
		c.MaxPrograms = 0
	}
	return c
}

// Server is the analysis service. Create with New, serve its Handler,
// stop with Shutdown.
type Server struct {
	cfg   Config
	store *store
	mc    *metrics.Collector
	rep   *replicate.Replicator // nil = replication off

	mu       sync.Mutex
	draining bool
	seq      int
	jobs     map[string]*Job
	jobOrder []string
	tenants  map[string]int // queued+running jobs per tenant
	queued   []int          // per-shard queue occupancy (for 429 + queue_depth)

	shards []chan *Job
	wg     sync.WaitGroup

	// runJob runs one job's pipeline; tests may wrap it to gate shard
	// workers deterministically (backpressure/drain tests).
	runJob func(j *Job)
}

// New starts a server: one goroutine per shard, ready to accept jobs.
// With Config.StateDir set it first recovers every persisted program
// (replaying checkpoint + WAL, quarantining anything damaged — recovery
// never fails boot); the error return is only for an unusable state
// directory itself.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		store:   newStore(cfg.SnapEntries, cfg.MaxPrograms, cfg.Metrics),
		mc:      cfg.Metrics,
		jobs:    make(map[string]*Job),
		tenants: make(map[string]int),
		queued:  make([]int, cfg.Shards),
		shards:  make([]chan *Job, cfg.Shards),
	}
	if cfg.StateDir != "" {
		pstore, recovered, err := persist.Open(cfg.StateDir, persist.Options{
			Faults:  cfg.Faults,
			Metrics: cfg.Metrics,
		})
		if err != nil {
			return nil, err
		}
		s.store.pstore = pstore
		s.rehydrateAll(recovered)
	}
	s.rep = replicate.New(replicate.Config{
		Peers:    cfg.Peers,
		Timeout:  cfg.PeerTimeout,
		Retries:  cfg.PeerRetries,
		Backoff:  cfg.PeerBackoff,
		CoolDown: cfg.PeerCoolDown,
		Client:   cfg.PeerClient,
		Faults:   cfg.Faults,
		Metrics:  cfg.Metrics,
	})
	s.store.rep = s.rep
	s.runJob = s.execute
	for i := range s.shards {
		ch := make(chan *Job, cfg.QueueDepth)
		s.shards[i] = ch
		s.wg.Add(1)
		go s.runShard(ch)
	}
	return s, nil
}

// ErrRejected is returned by Submit when the service cannot accept the
// job right now; Reason distinguishes queue backpressure from tenant
// quota exhaustion, and Drain marks shutdown rejections (503, not 429).
type ErrRejected struct {
	Reason string
	Drain  bool
}

func (e *ErrRejected) Error() string { return "serve: rejected: " + e.Reason }

// Submit validates, admits, and enqueues a job. It returns the accepted
// job, or *ErrRejected when the shard queue is full / the tenant is over
// quota / the server is draining, or a validation error.
func (s *Server) Submit(spec Spec) (*Job, error) {
	if _, _, err := spec.Options.validate(); err != nil {
		return nil, err
	}
	prog, name, key, err := resolve(spec)
	if err != nil {
		return nil, err
	}
	tenant := spec.Tenant
	if tenant == "" {
		tenant = "anonymous"
		spec.Tenant = tenant
	}
	// acquire raises the program's inflight count (an in-flight program
	// cannot be evicted out from under its jobs); every admission-failure
	// return below must release it, success hands the reference to finish.
	ps, existed := s.store.acquire(key, name, prog, sourceOf(spec))
	shard := s.shardFor(key)

	// Admission is one critical section: quota check, queue-capacity
	// check, and the channel send all happen under mu, the same lock
	// Shutdown holds while closing the shard channels — so a send can
	// never hit a closed channel, and capacity accounting can't race
	// another submission into an over-full queue.
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.store.release(ps)
		s.mc.Count("serve.jobs_rejected_drain", 1)
		return nil, &ErrRejected{Reason: "server is draining", Drain: true}
	}
	if s.tenants[tenant] >= s.cfg.TenantQuota {
		s.store.release(ps)
		s.mc.Count("serve.jobs_rejected_quota", 1)
		return nil, &ErrRejected{Reason: fmt.Sprintf("tenant %q is at its quota of %d in-flight jobs", tenant, s.cfg.TenantQuota)}
	}
	if s.queued[shard] >= s.cfg.QueueDepth {
		s.store.release(ps)
		s.mc.Count("serve.jobs_rejected_queue", 1)
		return nil, &ErrRejected{Reason: fmt.Sprintf("shard %d queue is full (%d jobs)", shard, s.cfg.QueueDepth)}
	}
	s.seq++
	id := fmt.Sprintf("job-%d", s.seq)
	j := newJob(id, spec, ps, shard)
	if !existed {
		s.mc.Count("serve.store_programs", 1)
	}
	s.jobs[id] = j
	s.jobOrder = append(s.jobOrder, id)
	s.tenants[tenant]++
	s.queued[shard]++
	s.shards[shard] <- j // capacity-checked above; cannot block
	s.mc.Count("serve.jobs_submitted", 1)
	return j, nil
}

// Job returns a previously submitted job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs snapshots all job statuses in submission order.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	ordered := make([]*Job, 0, len(s.jobOrder))
	for _, id := range s.jobOrder {
		ordered = append(ordered, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]JobStatus, len(ordered))
	for i, j := range ordered {
		out[i] = j.Status()
	}
	return out
}

// Programs snapshots the store.
func (s *Server) Programs() []ProgramInfo { return s.store.list() }

// Metrics returns the live collector /metrics scrapes (the one finished
// jobs merge into) — the loadgen harness reads the serve.* totals off it.
func (s *Server) Metrics() *metrics.Collector { return s.mc }

// Shutdown drains the service: new submissions are rejected with 503,
// already-accepted jobs run to completion, and Shutdown returns when
// every shard goroutine has exited or ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		for _, ch := range s.shards {
			close(ch)
		}
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		// Every job is drained; fold each program's WAL into a final
		// checkpoint and release the file handles. (A kill that skips
		// this loses nothing — the WAL already holds every job — it just
		// leaves the compaction to the next boot's replay.)
		s.persistAll(true)
		if s.rep != nil {
			// Final anti-entropy sweep: everything this replica learned
			// goes out to the fleet before the process exits.
			for _, ps := range s.store.all() {
				if ps.state.Warm() {
					s.offerState(ps)
				}
			}
			s.rep.Flush(ctx)
			s.rep.Close()
		}
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted: %w", ctx.Err())
	}
}

// shardFor routes a content key to a shard. Same program → same shard,
// always: that serialization is what lets jobs mutate the program's
// ExploreState without locks and makes resume counts deterministic.
func (s *Server) shardFor(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(s.cfg.Shards))
}

func (s *Server) runShard(ch chan *Job) {
	defer s.wg.Done()
	for j := range ch {
		// Read the hook under mu: tests swap it (to gate shard workers
		// deterministically) between New and the first Submit.
		s.mu.Lock()
		run := s.runJob
		s.mu.Unlock()
		run(j)
	}
}

// finish releases a job's admission accounting and its eviction pin.
func (s *Server) finish(j *Job) {
	s.mu.Lock()
	s.tenants[j.spec.Tenant]--
	if s.tenants[j.spec.Tenant] <= 0 {
		delete(s.tenants, j.spec.Tenant)
	}
	s.queued[j.shard]--
	s.mu.Unlock()
	s.store.release(j.ps)
}

// execute runs one job's pipeline on its shard goroutine. The admission
// accounting (queue slot, tenant quota) is released *before* the
// terminal status is published: a client that observed the job finish
// must be able to submit the next one without racing the bookkeeping.
func (s *Server) execute(j *Job) {
	terminal := s.run(j)
	s.finish(j)
	j.update(terminal)
}

// run executes the pipeline and returns the terminal status mutation.
func (s *Server) run(j *Job) func(*JobStatus) {
	start := time.Now()
	s.mc.Count("serve.jobs_started", 1)

	spec := j.spec
	engine, mode, err := spec.Options.validate()
	if err != nil { // re-validated defensively; Submit already checked
		return s.fail(j, err)
	}

	var resume = j.ps.state
	warm := resume.Warm()
	if spec.Options.resumeEligible() {
		if warm {
			s.mc.Count("serve.resume_hits", 1)
		} else {
			s.mc.Count("serve.resume_misses", 1)
		}
	} else {
		resume = nil
	}
	j.update(func(st *JobStatus) {
		st.State = StateRunning
		st.Resume = resume != nil && warm
	})

	prog := j.ps.prog
	if spec.Options.MaxSteps > 0 {
		prog.MaxSteps = spec.Options.MaxSteps
	}
	workers := spec.Options.Workers
	if workers <= 0 {
		workers = s.cfg.Workers
	}
	detectRuns := spec.Options.Runs
	if detectRuns <= 0 {
		detectRuns = 8 // cmd/owl's -runs default
	}
	opts := owl.Options{
		Engine:          engine,
		DetectRuns:      detectRuns,
		Explore:         mode,
		Budget:          spec.Options.Budget,
		Seed:            spec.Options.Seed,
		SnapCache:       spec.Options.SnapCache,
		Predict:         spec.Options.Predict,
		PredictReversal: spec.Options.PredictReversal,
		Workers:         workers,
		Metrics:         j.mc,
		ExploreState:    resume,
	}
	res, err := owl.Run(prog, opts)
	if err != nil {
		return s.fail(j, err)
	}

	freshIDs, known, total, subs := j.ps.absorbRun(res)
	// Make the job durable before its terminal status publishes: a
	// client that saw "done" and killed the server must find this job's
	// contribution after restart.
	s.persistJob(j.ps, freshIDs, subs)
	if j.ps.log == nil {
		// Memory-only program: there is no checkpoint-fold cadence to
		// ride, so anti-entropy pushes after every completed job (Offer
		// is async and latest-wins, so a busy program collapses to one
		// queued blob).
		s.offerState(j.ps)
	}
	var detectRuns64 int64
	for _, c := range j.mc.Snapshot().Counters {
		if c.Name == "owl.detect_runs" {
			detectRuns64 = c.Value
		}
	}
	result := &JobResult{
		SummaryText:       report.Text(j.ps.name, res),
		RawReports:        res.Stats.RawReports,
		Remaining:         res.Stats.Remaining,
		Findings:          res.Stats.Findings,
		VerifiedAttacks:   res.Stats.VerifiedAttacks,
		ExecutedSchedules: detectRuns64,
		NewReports:        len(freshIDs),
		KnownReports:      known,
		StoreReports:      total,
		Submissions:       subs,
		ElapsedMS:         float64(time.Since(start)) / float64(time.Millisecond),
	}
	s.mc.Merge(j.mc)
	s.mc.Count("serve.jobs_completed", 1)
	return func(st *JobStatus) {
		st.State = StateDone
		st.Result = result
	}
}

func (s *Server) fail(j *Job, err error) func(*JobStatus) {
	s.mc.Merge(j.mc)
	s.mc.Count("serve.jobs_failed", 1)
	return func(st *JobStatus) {
		st.State = StateFailed
		st.Error = err.Error()
	}
}

// queueGauges refreshes the scrape-time gauges on the live collector.
func (s *Server) queueGauges() {
	s.mu.Lock()
	depth := 0
	for _, n := range s.queued {
		depth += n
	}
	active := 0
	for _, n := range s.tenants {
		active += n
	}
	drain := s.draining
	s.mu.Unlock()
	s.mc.Gauge("serve.queue_depth", float64(depth))
	s.mc.Gauge("serve.active_jobs", float64(active))
	s.mc.Flag("serve.draining", drain)
	s.mc.Gauge("serve.shards", float64(s.cfg.Shards))
}
